// Command dominolint runs the repository's static-contract analyzer
// suite (internal/lint) over package patterns and fails the build on
// findings. It is the compile-time layer of the verification ladder:
// below the runtime property tests, above plain go vet.
//
// Usage:
//
//	dominolint [-out findings.txt] [-list] [packages...]   # default ./...
//	dominolint -dir internal/lint/testdata/src/seeded/flow # fixture mode
//
// Exit status: 0 clean, 1 findings, 2 operational error. The -dir mode
// loads one directory through the fixture loader (no go list), which is
// how CI proves the gate is live: a deliberately broken fixture must
// make dominolint exit non-zero.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	out := flag.String("out", "", "also write findings to this file (always written, even when empty, so CI can upload it)")
	dir := flag.String("dir", "", "check one directory via the fixture loader instead of go list patterns")
	list := flag.Bool("list", false, "print the analyzer suite and exit")
	flag.Parse()

	suite := lint.Suite()
	if *list {
		for _, a := range suite {
			dir := "-"
			if a.Directive != "" {
				dir = "//dominolint:" + a.Directive
			}
			fmt.Printf("%-10s %-24s %s\n", a.Name, dir, a.Doc)
		}
		return
	}

	var findings []lint.Finding
	if *dir != "" {
		pkg, err := lint.LoadDir(*dir)
		if err != nil {
			fatal(err)
		}
		findings = lint.CheckPackage(pkg, suite)
	} else {
		patterns := flag.Args()
		if len(patterns) == 0 {
			patterns = []string{"./..."}
		}
		pkgs, err := lint.LoadPackages("", patterns)
		if err != nil {
			fatal(err)
		}
		for _, pkg := range pkgs {
			findings = append(findings, lint.CheckPackage(pkg, suite)...)
		}
	}

	var b strings.Builder
	for _, f := range findings {
		fmt.Fprintln(&b, f)
	}
	fmt.Print(b.String())
	if *out != "" {
		if err := os.WriteFile(*out, []byte(b.String()), 0o644); err != nil {
			fatal(err)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "dominolint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dominolint:", err)
	os.Exit(2)
}
