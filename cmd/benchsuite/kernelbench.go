package main

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/bdd"
	"repro/internal/domino"
	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/order"
	"repro/internal/phase"
	"repro/internal/prob"
	"repro/internal/sim"
)

// KernelBench is one benchmark row of BENCH_2.json: the in-process
// equivalent of a `go test -bench` line for one kernel configuration.
type KernelBench struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// KernelSuite is the persisted BENCH_2.json document, the ISSUE 2
// before/after record: the scalar and bit-parallel simulation kernels on
// a benchsuite twin, and the map-free BDD engine's build and probability
// passes.
type KernelSuite struct {
	GeneratedAt time.Time `json:"generated_at"`
	// SimWideSpeedupX is scalar ns/op over wide ns/op — the ISSUE's
	// ≥ 8× throughput gate.
	SimWideSpeedupX float64       `json:"sim_wide_speedup_x"`
	Benchmarks      []KernelBench `json:"benchmarks"`
}

func toBench(name string, r testing.BenchmarkResult) KernelBench {
	return KernelBench{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// runKernelBench measures both simulation kernels and the BDD engine via
// testing.Benchmark and writes BENCH_2.json to outPath. It mirrors the
// root BenchmarkSimWideVsScalar / BenchmarkBDDBuild setups so CI
// artifacts and `go test -bench` lines are directly comparable.
func runKernelBench(outPath string) error {
	c := gen.X1()
	net := flow.Prepare(c.Net)
	res, err := phase.Apply(net, phase.AllPositive(net.NumOutputs()))
	if err != nil {
		return err
	}
	blk, err := domino.Map(res, domino.DefaultLibrary())
	if err != nil {
		return err
	}
	probs := prob.Uniform(net, 0.5)

	simBench := func(kernel sim.Kernel) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(blk, sim.Config{
					Vectors: 4096, Seed: 1, InputProbs: probs, Kernel: kernel,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	scalar := simBench(sim.KernelScalar)
	wide := simBench(sim.KernelWide)

	bddNet := flow.Prepare(gen.Generate(gen.Params{
		Name: "bddbuild", Inputs: 20, Outputs: 8, Gates: 260, Seed: 77, OrProb: 0.6,
	}))
	ord := order.ReverseTopological(bddNet)
	build := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := bdd.BuildNetwork(bddNet, ord); err != nil {
				b.Fatal(err)
			}
		}
	})
	nb, err := bdd.BuildNetwork(bddNet, ord)
	if err != nil {
		return err
	}
	bddProbs := prob.Uniform(bddNet, 0.5)
	probPass := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			nb.Manager.ProbabilityMany(nb.NodeRefs, bddProbs)
		}
	})

	suite := KernelSuite{
		GeneratedAt: time.Now().UTC(),
		SimWideSpeedupX: (float64(scalar.T.Nanoseconds()) / float64(scalar.N)) /
			(float64(wide.T.Nanoseconds()) / float64(wide.N)),
		Benchmarks: []KernelBench{
			toBench("sim/x1/scalar", scalar),
			toBench("sim/x1/wide", wide),
			toBench("bdd/build", build),
			toBench("bdd/probability", probPass),
		},
	}
	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(suite); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	for _, kb := range suite.Benchmarks {
		fmt.Printf("%-16s %12.0f ns/op %8d allocs/op\n", kb.Name, kb.NsPerOp, kb.AllocsPerOp)
	}
	fmt.Printf("sim wide speedup: %.1fx -> %s\n", suite.SimWideSpeedupX, outPath)
	return nil
}
