// Command benchsuite is the batch evaluation runner: it generates the
// synthetic benchmark twins, sweeps every (circuit, objective)
// configuration concurrently on a bounded worker pool, and persists the
// results as both a markdown table (results.md) and machine-readable
// JSON (results.json) — the sweep-everything-and-keep-a-table workflow
// of the DAC-evaluation repos this reproduction draws on.
//
// Results are deterministic for a fixed (-seed, -shards, -vectors)
// triple; -workers trades wall-clock only. Exhaustive search rows are
// skipped (and say so) beyond -exhaustive-limit outputs.
//
// With -bench-out PATH the runner instead measures the two simulation
// kernels (scalar reference vs 64-lane bit-parallel) and the map-free
// BDD engine in-process and writes ns/op + allocs/op to PATH
// (BENCH_2.json in CI) — the benchmark smoke artifact.
//
// With -cone-bench-out PATH it measures the cone-table exhaustive phase
// search against the naive per-mask Apply+Estimate path on the synth12
// twin, verifies the two scorers agree and the winner is invariant
// across worker counts, and writes the record to PATH (BENCH_3.json in
// CI), failing below a 100x speedup.
//
// With -search-bench-out PATH it measures the ISSUE 4 search-strategy
// stack: per-candidate full rescore vs incremental gray-code Flip on
// synth12 (gated at 10x), gray/branch-and-bound winner agreement with
// the ascending-mask reference at workers 1/2/8, and the
// beyond-exhaustive strategies on the wide 24/32-output twins (gated on
// annealing strictly beating the MinPower heuristic at k = 32 and on
// branch-and-bound's k = 24 exactness). Writes PATH (BENCH_4.json in
// CI).
//
// With -satbench-out PATH it runs the ISSUE 7 saturation benchmark:
// the wide and blocked simulation kernels across block sizes and
// worker counts on the x1/wide32 twins plus a low-activity twin, with
// byte-equality checks against the scalar oracle, vectors/sec/core
// throughput, and gating skip rates. Writes PATH (BENCH_7.json in CI);
// fails below 3x blocked-over-wide on x1 or a 0.5 low-activity skip
// rate.
//
// With -reorder-bench-out PATH it runs the ISSUE 9 in-place BDD
// reordering benchmark: the Table-1 twins plus the 288-input x4 twin
// under the BENCH_8 budgeted configuration across per-circuit worker
// counts {1,2,8} (rows must be bit-identical modulo wall-clock), a
// reorder-off control, the frontier ladder on which x3 and Industry 2
// complete exact-sifted at budgets where the reorder-free chain still
// degrades them, and a cache round-trip through an in-process dominod.
// Writes PATH (BENCH_9.json in CI); fails if the largest exact
// completion does not beat x3's 235 PIs at the default budget, if
// fewer than two Table-1 circuits are rescued, or if the resubmission
// re-enters the flow.
//
// -cpuprofile / -memprofile write pprof profiles of any mode.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/gen"
	"repro/internal/par"
)

// Row is one configuration's outcome, a line of results.md and one JSON
// record.
type Row struct {
	Circuit   string  `json:"circuit"`
	Objective string  `json:"objective"`
	PIs       int     `json:"pis"`
	POs       int     `json:"pos"`
	Gates     int     `json:"gates,omitempty"`
	Inverters int     `json:"inverters,omitempty"`
	EstPower  float64 `json:"est_power,omitempty"`
	SimPower  float64 `json:"measured_power,omitempty"`
	WallSec   float64 `json:"wall_seconds"`
	Skipped   bool    `json:"skipped,omitempty"`
	Reason    string  `json:"reason,omitempty"`
}

// Suite is the persisted results.json document.
type Suite struct {
	GeneratedAt time.Time `json:"generated_at"`
	Vectors     int       `json:"vectors"`
	Seed        int64     `json:"seed"`
	Shards      int       `json:"shards"`
	Workers     int       `json:"workers"`
	WallSec     float64   `json:"wall_seconds"`
	Rows        []Row     `json:"rows"`
}

var objectives = []struct {
	name string
	obj  core.Objective
}{
	{"MinArea", core.MinArea},
	{"MinPower", core.MinPower},
	{"Exhaustive", core.ExhaustivePower},
}

// synth10Circuit and synth12Circuit are mid-width synthetic circuits
// whose 2^10 and 2^12 phase spaces keep the exhaustive objective
// feasible (the industry twins' 86–199 outputs never are). synth12 is
// also the k ≥ 12 twin the cone-table exhaustive benchmark (BENCH_3)
// measures.
func synth10Circuit() gen.NamedCircuit {
	return gen.NamedCircuit{Name: "synth10", Desc: "Synthetic (exhaustive-feasible)",
		Net: gen.Generate(gen.Params{Name: "synth10", Inputs: 16, Outputs: 10, Gates: 110, Seed: 0x510, OrProb: 0.65})}
}

func synth12Circuit() gen.NamedCircuit {
	return gen.NamedCircuit{Name: "synth12", Desc: "Synthetic (exhaustive-feasible)",
		Net: gen.Generate(gen.Params{Name: "synth12", Inputs: 18, Outputs: 12, Gates: 130, Seed: 0x512, OrProb: 0.6})}
}

// suiteCircuits returns the Table 1 twins, the two exhaustive-feasible
// synthetic circuits, and the beyond-exhaustive wide twins (whose
// Exhaustive rows are skipped past -exhaustive-limit; the MA/MP rows
// exercise the greedy fallback and the pairwise heuristic at widths the
// strategy benchmark covers with annealing and branch-and-bound).
func suiteCircuits() []gen.NamedCircuit {
	cs := append(gen.Table1Circuits(), synth10Circuit(), synth12Circuit())
	return append(cs, gen.WideCircuits()...)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchsuite: ")
	outDir := flag.String("out", ".", "directory for results.md / results.json")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "how many (circuit, objective) jobs run concurrently; each job runs single-worker so its wall time stays comparable")
	vectors := flag.Int("vectors", 4096, "Monte-Carlo measurement cycles per configuration")
	seed := flag.Int64("seed", 1, "measurement seed")
	shards := flag.Int("shards", 8, "simulation shards (results depend on seed+shards, not workers)")
	exLimit := flag.Int("exhaustive-limit", 14, "skip the Exhaustive objective beyond this many outputs")
	benchOut := flag.String("bench-out", "", "kernel-benchmark mode: measure the scalar vs bit-parallel sim kernels and the BDD engine, write the JSON record to this path (e.g. BENCH_2.json), and exit without sweeping")
	coneBenchOut := flag.String("cone-bench-out", "", "cone-table benchmark mode: measure the cached-cone exhaustive phase search against the naive per-mask Apply+Estimate path on the synth12 twin, verify both agree and that the winner is worker-invariant, write the JSON record to this path (e.g. BENCH_3.json), and exit without sweeping")
	searchBenchOut := flag.String("search-bench-out", "", "search-strategy benchmark mode: measure per-candidate full rescore vs incremental gray-code Flip on the synth12 twin (>=10x gate), verify gray/branch-and-bound winner agreement with the reference scan across worker counts, run the beyond-exhaustive strategies on the wide twins (annealing must strictly beat the MinPower heuristic at k=32), write the JSON record to this path (e.g. BENCH_4.json), and exit without sweeping")
	reorderBenchOut := flag.String("reorder-bench-out", "", "BDD reordering benchmark mode: run the Table-1 + x4 corpus under the BENCH_8 budgeted configuration with in-place sifting on and off across worker counts, the frontier ladder on which sifting rescues x3 and Industry 2 to exact-sifted, and a dominod cache round-trip; write the JSON record to this path (e.g. BENCH_9.json) and exit without sweeping")
	satBenchOut := flag.String("satbench-out", "", "saturation benchmark mode: sweep the wide and blocked simulation kernels across block sizes and worker counts on the x1/wide32 twins plus a low-activity twin, verify byte-identical Reports against the scalar oracle, write the JSON record to this path (e.g. BENCH_7.json), and exit without sweeping; fails below a 3x blocked-over-wide speedup on x1 or a 0.5 gating skip rate on the low-activity twin")
	corpusPaths := flag.String("corpus", "", "corpus mode: sweep the .blif/.pla files under these comma-separated directories/globs/files instead of the generated twins")
	strategiesFlag := flag.String("strategies", "", "corpus mode: comma-separated MinPower search strategies to sweep (auto, exhaustive, bb, anneal, greedy); empty = the paper's pairwise heuristic only")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file (any mode; inspect with go tool pprof)")
	memProfile := flag.String("memprofile", "", "write a heap profile at exit to this file (any mode; inspect with go tool pprof)")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Print(err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Print(err)
			}
			f.Close()
		}()
	}

	if *benchOut != "" {
		if err := runKernelBench(*benchOut); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *coneBenchOut != "" {
		if err := runConeBench(*coneBenchOut); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *searchBenchOut != "" {
		if err := runSearchBench(*searchBenchOut); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *satBenchOut != "" {
		if err := runSatBench(*satBenchOut); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *reorderBenchOut != "" {
		if err := runReorderBench(*reorderBenchOut); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *corpusPaths != "" {
		paths := corpus.SplitList(*corpusPaths)
		strategies := corpus.SplitList(*strategiesFlag)
		if err := runCorpusSweep(paths, strategies, *outDir, *workers, *vectors, *seed, *shards, *exLimit); err != nil {
			log.Fatal(err)
		}
		return
	}

	circuits := suiteCircuits()
	type job struct {
		c   gen.NamedCircuit
		obj int
	}
	var jobs []job
	for _, c := range circuits {
		for o := range objectives {
			jobs = append(jobs, job{c, o})
		}
	}

	start := time.Now()
	rows, err := par.Map(context.Background(), len(jobs), *workers,
		func(_ context.Context, i int) (Row, error) {
			j := jobs[i]
			row := Row{
				Circuit:   j.c.Name,
				Objective: objectives[j.obj].name,
				PIs:       j.c.Net.NumInputs(),
				POs:       j.c.Net.NumOutputs(),
			}
			if objectives[j.obj].obj == core.ExhaustivePower && row.POs > *exLimit {
				row.Skipped = true
				row.Reason = fmt.Sprintf("2^%d assignments exceed -exhaustive-limit %d", row.POs, *exLimit)
				return row, nil
			}
			// Parallelism lives at the job grain: each synthesis runs
			// single-worker so concurrent rows don't oversubscribe the
			// CPU and per-row wall times measure the configuration, not
			// pool contention. Shards still split the measurement — they
			// determine results, workers never do.
			t0 := time.Now()
			res, err := core.Synthesize(j.c.Net, core.Options{
				Objective: objectives[j.obj].obj,
				Vectors:   *vectors,
				Seed:      *seed,
				Workers:   1,
				SimShards: *shards,
			})
			if err != nil {
				return Row{}, fmt.Errorf("%s/%s: %w", row.Circuit, row.Objective, err)
			}
			row.WallSec = time.Since(t0).Seconds()
			row.Gates = res.Block.DominoCellCount()
			row.Inverters = res.Block.InverterCount()
			row.EstPower = res.EstimatedPower
			row.SimPower = res.MeasuredPower
			log.Printf("%-12s %-10s done in %6.2fs", row.Circuit, row.Objective, row.WallSec)
			return row, nil
		})
	if err != nil {
		log.Fatal(err)
	}

	suite := Suite{
		GeneratedAt: time.Now().UTC(),
		Vectors:     *vectors,
		Seed:        *seed,
		Shards:      *shards,
		Workers:     *workers,
		WallSec:     time.Since(start).Seconds(),
		Rows:        rows,
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	if err := writeJSON(filepath.Join(*outDir, "results.json"), suite); err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(*outDir, "results.md"), []byte(markdown(suite)), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("%d configurations in %.1fs -> %s/results.{md,json}",
		len(rows), suite.WallSec, *outDir)
}

func writeJSON(path string, suite Suite) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(suite); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func markdown(s Suite) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Benchmark suite results\n\n")
	fmt.Fprintf(&b, "Generated %s · %d vectors · seed %d · %d shards · %d workers · %.1fs total\n\n",
		s.GeneratedAt.Format(time.RFC3339), s.Vectors, s.Seed, s.Shards, s.Workers, s.WallSec)
	fmt.Fprintf(&b, "| Circuit | Objective | PIs | POs | Gates | Inverters | Est. power | Measured power | Wall time |\n")
	fmt.Fprintf(&b, "|---|---|--:|--:|--:|--:|--:|--:|--:|\n")
	for _, r := range s.Rows {
		if r.Skipped {
			fmt.Fprintf(&b, "| %s | %s | %d | %d | — | — | — | skipped: %s | — |\n",
				r.Circuit, r.Objective, r.PIs, r.POs, r.Reason)
			continue
		}
		fmt.Fprintf(&b, "| %s | %s | %d | %d | %d | %d | %.3f | %.3f | %.2fs |\n",
			r.Circuit, r.Objective, r.PIs, r.POs, r.Gates, r.Inverters, r.EstPower, r.SimPower, r.WallSec)
	}
	b.WriteString("\nPower figures are switched-capacitance units per cycle (see internal/sim).\n")
	b.WriteString("Wall times are single-worker per configuration; the sweep itself runs rows concurrently.\n")
	return b.String()
}
