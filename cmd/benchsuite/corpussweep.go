package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/par"
	"repro/internal/phase"
)

// runCorpusSweep is benchsuite's corpus mode: it discovers .blif/.pla
// files under the given paths and sweeps every (circuit, objective[,
// strategy]) configuration concurrently — the same sweep-and-persist
// workflow as the twin suite, but over an arbitrary on-disk corpus.
// Latched BLIF models are swept in their standard combinational view
// (latch boundaries as pseudo-PIs/POs). Parse failures are isolated
// into skipped rows; they never sink the sweep.
func runCorpusSweep(paths []string, strategies []string, outDir string, workers, vectors int, seed int64, shards, exLimit int) error {
	entries, err := corpus.Discover(paths...)
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		return fmt.Errorf("no .blif/.pla files under %s", strings.Join(paths, ","))
	}

	type strat struct {
		name  string
		strat phase.SearchStrategy
	}
	mpStrats := []strat{{"", phase.StrategyAuto}}
	if len(strategies) > 0 {
		mpStrats = mpStrats[:0]
		for _, s := range strategies {
			ps, err := phase.ParseStrategy(s)
			if err != nil {
				return err
			}
			label := s
			if ps == phase.StrategyAuto {
				label = ""
			}
			mpStrats = append(mpStrats, strat{label, ps})
		}
	}

	type job struct {
		entry     corpus.Entry
		objective string
		strategy  strat
		skip      string
	}
	var jobs []job
	// Discovery is cheap; parse interfaces up front so exhaustive-limit
	// skips are decided deterministically before the sweep.
	circuits := make(map[string]*corpus.Circuit, len(entries))
	for _, e := range entries {
		c, err := corpus.Load(e)
		if err != nil {
			jobs = append(jobs, job{entry: e, objective: "parse", skip: err.Error()})
			continue
		}
		circuits[e.Path] = c
		for _, o := range objectives {
			switch o.obj {
			case core.MinPower:
				for _, s := range mpStrats {
					jobs = append(jobs, job{entry: e, objective: o.name, strategy: s})
				}
			case core.ExhaustivePower:
				j := job{entry: e, objective: o.name}
				if pos := c.Named.Net.NumOutputs(); pos > exLimit {
					j.skip = fmt.Sprintf("2^%d assignments exceed -exhaustive-limit %d", pos, exLimit)
				}
				jobs = append(jobs, j)
			default:
				jobs = append(jobs, job{entry: e, objective: o.name})
			}
		}
	}

	objOf := func(name string) core.Objective {
		for _, o := range objectives {
			if o.name == name {
				return o.obj
			}
		}
		return core.MinArea
	}

	start := time.Now()
	rows, err := par.Map(context.Background(), len(jobs), workers,
		func(_ context.Context, i int) (Row, error) {
			j := jobs[i]
			label := j.objective
			if j.strategy.name != "" {
				label += "/" + j.strategy.name
			}
			row := Row{Circuit: j.entry.Name, Objective: label}
			if j.skip != "" {
				row.Skipped = true
				row.Reason = j.skip
				return row, nil
			}
			c := circuits[j.entry.Path]
			row.PIs = c.Named.Net.NumInputs()
			row.POs = c.Named.Net.NumOutputs()
			t0 := time.Now()
			res, err := core.Synthesize(c.Named.Net, core.Options{
				Objective:      objOf(j.objective),
				Vectors:        vectors,
				Seed:           seed,
				Workers:        1,
				SimShards:      shards,
				SearchStrategy: j.strategy.strat,
				SearchSeed:     seed,
			})
			if err != nil {
				// Same isolation contract as the corpus engine: one bad
				// configuration reports itself and the sweep carries on.
				row.Skipped = true
				row.Reason = err.Error()
				return row, nil
			}
			row.WallSec = time.Since(t0).Seconds()
			row.Gates = res.Block.DominoCellCount()
			row.Inverters = res.Block.InverterCount()
			row.EstPower = res.EstimatedPower
			row.SimPower = res.MeasuredPower
			log.Printf("%-16s %-16s done in %6.2fs", row.Circuit, row.Objective, row.WallSec)
			return row, nil
		})
	if err != nil {
		return err
	}

	suite := Suite{
		GeneratedAt: time.Now().UTC(),
		Vectors:     vectors,
		Seed:        seed,
		Shards:      shards,
		Workers:     workers,
		WallSec:     time.Since(start).Seconds(),
		Rows:        rows,
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	if err := writeJSON(filepath.Join(outDir, "results.json"), suite); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(outDir, "results.md"), []byte(markdown(suite)), 0o644); err != nil {
		return err
	}
	log.Printf("%d corpus configurations in %.1fs -> %s/results.{md,json}",
		len(rows), suite.WallSec, outDir)
	return nil
}
