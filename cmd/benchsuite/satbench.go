package main

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/domino"
	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/phase"
	"repro/internal/prob"
	"repro/internal/sim"
)

// satVectors is the measurement length of the saturation rows. It is
// deliberately large: the per-run setup (shard seeding, scratch
// allocation, gate-table precompute) is identical across kernels and
// amortizes out, so the rows measure steady-state throughput — the
// regime the blocked kernel is built for.
const satVectors = 65536

// SatRow is one saturation-sweep configuration of BENCH_7.json.
type SatRow struct {
	Circuit    string  `json:"circuit"`
	Kernel     string  `json:"kernel"`
	BlockWords int     `json:"block_words,omitempty"`
	Workers    int     `json:"workers"`
	Shards     int     `json:"shards"`
	Vectors    int     `json:"vectors"`
	NsPerOp    float64 `json:"ns_per_op"`
	// VectorsPerSec is whole-run throughput; VectorsPerSecPerCore
	// divides by the worker count — the saturation figure of merit
	// (flat per-core throughput across the worker sweep means the
	// sharded kernels scale; a droop means contention).
	VectorsPerSec        float64 `json:"vectors_per_sec"`
	VectorsPerSecPerCore float64 `json:"vectors_per_sec_per_core"`
	// SkipRate is the blocked kernel's activity-gating skip fraction
	// for this configuration (0 for other kernels).
	SkipRate    float64 `json:"skip_rate,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// SatSuite is the persisted BENCH_7.json document: the blocked-kernel
// saturation benchmark plus its three CI gates.
type SatSuite struct {
	GeneratedAt time.Time `json:"generated_at"`
	// BlockedSpeedupX is KernelWide ns/op over KernelBlocked (8-word
	// blocks) ns/op on the x1 twin, single worker, satVectors cycles —
	// the ISSUE 7 ≥ 3× throughput gate.
	BlockedSpeedupX float64 `json:"blocked_speedup_x"`
	// ReportsByteIdentical records that every blocked-kernel Report in
	// the equality matrix matched the scalar oracle's byte for byte.
	ReportsByteIdentical bool `json:"reports_byte_identical"`
	// LowActSkipRate is the gating skip fraction on the low-activity
	// twin (inputs at p = 1/8192) — gated > 0.5.
	LowActSkipRate float64  `json:"lowact_skip_rate"`
	Rows           []SatRow `json:"rows"`
}

// satCircuit is one prepared benchmark target.
type satCircuit struct {
	name  string
	blk   *domino.Block
	probs []float64
}

// satPrepare maps a generated twin through the phase-all-positive
// baseline flow, the same preparation the kernel benchmarks (BENCH_2)
// use.
func satPrepare(c gen.NamedCircuit, p float64) (satCircuit, error) {
	net := flow.Prepare(c.Net)
	res, err := phase.Apply(net, phase.AllPositive(net.NumOutputs()))
	if err != nil {
		return satCircuit{}, err
	}
	blk, err := domino.Map(res, domino.DefaultLibrary())
	if err != nil {
		return satCircuit{}, err
	}
	return satCircuit{name: c.Name, blk: blk, probs: prob.Uniform(net, p)}, nil
}

// runSatBench runs the ISSUE 7 saturation benchmark and writes
// BENCH_7.json to outPath. Three hard gates fail the run (and CI):
//
//   - the blocked kernel must be ≥ 3× the wide kernel's throughput on
//     the x1 twin (single worker, satVectors cycles);
//   - every blocked Report in the (Seed, Shards, Workers) equality
//     matrix must be byte-identical to the scalar oracle's (the wide
//     kernel is cross-checked in the same sweep);
//   - activity gating must skip more than half the gate evaluations on
//     the low-activity twin.
func runSatBench(outPath string) error {
	x1, err := satPrepare(gen.X1(), 0.5)
	if err != nil {
		return err
	}
	wide32, err := satPrepare(gen.Wide32(), 0.5)
	if err != nil {
		return err
	}
	// The low-activity twin is the x1 structure with near-constant
	// inputs: p = 1/8192 is dyadic (quantization-exact) and leaves most
	// packed words all-zero block over block, the case gating elides.
	lowact, err := satPrepare(gen.X1(), 1.0/8192)
	if err != nil {
		return err
	}
	lowact.name = "x1-lowact"

	// Byte-equality matrix: every (Seed, Shards, Workers) cell runs the
	// scalar oracle once and checks the wide and blocked kernels (both
	// tested block sizes) against it. Vectors stays moderate — the
	// scalar oracle is ~50× slower than the blocked kernel and the
	// contract is already exercised at satVectors by the gate row
	// below.
	identical := true
	for _, c := range []satCircuit{x1, wide32} {
		for _, seed := range []int64{1, 77} {
			for _, sw := range []struct{ shards, workers int }{
				{1, 1}, {8, 4}, {16, 2},
			} {
				cfg := sim.Config{
					Vectors: 8192, Seed: seed, InputProbs: c.probs,
					Shards: sw.shards, Workers: sw.workers,
				}
				cfg.Kernel = sim.KernelScalar
				oracle, err := sim.Run(c.blk, cfg)
				if err != nil {
					return err
				}
				cfg.Kernel = sim.KernelWide
				w, err := sim.Run(c.blk, cfg)
				if err != nil {
					return err
				}
				if !reflect.DeepEqual(w, oracle) {
					identical = false
					fmt.Printf("MISMATCH wide %s seed=%d shards=%d workers=%d\n", c.name, seed, sw.shards, sw.workers)
				}
				for _, bw := range []int{4, 8} {
					cfg.Kernel = sim.KernelBlocked
					cfg.BlockWords = bw
					blk, err := sim.Run(c.blk, cfg)
					if err != nil {
						return err
					}
					if !reflect.DeepEqual(blk, oracle) {
						identical = false
						fmt.Printf("MISMATCH blocked bw=%d %s seed=%d shards=%d workers=%d\n", bw, c.name, seed, sw.shards, sw.workers)
					}
				}
			}
		}
	}

	// Saturation sweep: kernels × block sizes × worker counts. Shards
	// scale with workers (4 per worker) so every lane has work; the
	// per-core column is the saturation signal.
	maxW := runtime.GOMAXPROCS(0)
	var workerCounts []int
	for _, w := range []int{1, 2, maxW} {
		if w <= maxW && (len(workerCounts) == 0 || w > workerCounts[len(workerCounts)-1]) {
			workerCounts = append(workerCounts, w)
		}
	}
	type kernelCase struct {
		name   string
		kernel sim.Kernel
		bw     int
	}
	cases := []kernelCase{
		{"wide", sim.KernelWide, 0},
		{"blocked", sim.KernelBlocked, 4},
		{"blocked", sim.KernelBlocked, 8},
	}
	var rows []SatRow
	measure := func(c satCircuit, kc kernelCase, workers, shards, vectors int) (SatRow, error) {
		var stats sim.KernelStats
		cfg := sim.Config{
			Vectors: vectors, Seed: 1, InputProbs: c.probs,
			Shards: shards, Workers: workers,
			Kernel: kc.kernel, BlockWords: kc.bw, Stats: &stats,
		}
		var runErr error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(c.blk, cfg); err != nil {
					runErr = err
					b.Fatal(err)
				}
			}
		})
		if runErr != nil {
			return SatRow{}, runErr
		}
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		vps := float64(vectors) * 1e9 / ns
		return SatRow{
			Circuit: c.name, Kernel: kc.name, BlockWords: kc.bw,
			Workers: workers, Shards: shards, Vectors: vectors,
			NsPerOp: ns, VectorsPerSec: vps,
			VectorsPerSecPerCore: vps / float64(workers),
			SkipRate:             stats.SkipRate(),
			AllocsPerOp:          r.AllocsPerOp(),
		}, nil
	}
	for _, c := range []satCircuit{x1, wide32, lowact} {
		for _, kc := range cases {
			for _, w := range workerCounts {
				row, err := measure(c, kc, w, 4*w, satVectors)
				if err != nil {
					return err
				}
				rows = append(rows, row)
				fmt.Printf("%-10s %-8s bw=%d workers=%d %12.0f ns/op %10.0f vec/s/core skip=%.3f\n",
					row.Circuit, row.Kernel, row.BlockWords, row.Workers,
					row.NsPerOp, row.VectorsPerSecPerCore, row.SkipRate)
			}
		}
	}

	// Gate rows: wide vs blocked-8 on x1, single worker and shard, so
	// the ratio is a pure kernel comparison.
	gateWide, err := measure(x1, cases[0], 1, 1, satVectors)
	if err != nil {
		return err
	}
	gateBlocked, err := measure(x1, cases[2], 1, 1, satVectors)
	if err != nil {
		return err
	}
	rows = append(rows, gateWide, gateBlocked)
	speedup := gateWide.NsPerOp / gateBlocked.NsPerOp

	// Low-activity skip-rate gate (sharded run, the deployment shape).
	var lowStats sim.KernelStats
	if _, err := sim.Run(lowact.blk, sim.Config{
		Vectors: satVectors, Seed: 17, InputProbs: lowact.probs,
		Shards: 4, Workers: 2, Kernel: sim.KernelBlocked, Stats: &lowStats,
	}); err != nil {
		return err
	}

	suite := SatSuite{
		GeneratedAt:          time.Now().UTC(),
		BlockedSpeedupX:      speedup,
		ReportsByteIdentical: identical,
		LowActSkipRate:       lowStats.SkipRate(),
		Rows:                 rows,
	}
	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(suite); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("blocked speedup on x1: %.2fx; lowact skip rate: %.3f; byte-identical: %v -> %s\n",
		suite.BlockedSpeedupX, suite.LowActSkipRate, suite.ReportsByteIdentical, outPath)

	if !identical {
		return fmt.Errorf("satbench: blocked/wide Reports diverged from the scalar oracle")
	}
	if speedup < 3.0 {
		return fmt.Errorf("satbench: blocked kernel %.2fx over wide on x1, gate requires >= 3.0x", speedup)
	}
	if suite.LowActSkipRate <= 0.5 {
		return fmt.Errorf("satbench: low-activity skip rate %.3f, gate requires > 0.5", suite.LowActSkipRate)
	}
	return nil
}
