package main

import (
	"archive/tar"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"time"

	"repro/internal/blif"
	"repro/internal/corpus"
	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/power"
	"repro/internal/serve"
)

// reorderDefaultBudget is the BDD node budget of the sweep — the same
// default the BENCH_8 chaos gate ran the Table-1 corpus under, so the
// two records measure the same frontier with and without in-place
// reordering.
const reorderDefaultBudget = 20000

// reorderWorkerCounts is the per-circuit flow worker sweep of the
// bit-identical gate.
var reorderWorkerCounts = []int{1, 2, 8}

// ReorderRow is one (circuit, budget, mode) outcome of BENCH_9.json.
type ReorderRow struct {
	Circuit string `json:"circuit"`
	PIs     int    `json:"pis"`
	POs     int    `json:"pos"`
	Budget  int    `json:"budget"`
	// Reorder is the BDDReorder mode the row ran under ("auto"/"off").
	Reorder string `json:"reorder"`
	// Engine is the degradation-chain stage that produced the row:
	// "" = exact on the static order, "exact-sifted" = exact after
	// in-place reordering, else a degraded engine.
	Engine      string  `json:"engine,omitempty"`
	BudgetTrips int     `json:"budget_trips,omitempty"`
	WallSec     float64 `json:"wall_sec"`
}

// RescueRow records one frontier-ladder circuit: a Table-1 circuit
// that degrades under the PR-8 chain at this budget but completes
// exactly once the reorder-and-retry stage arms sifting.
type RescueRow struct {
	Circuit    string  `json:"circuit"`
	Budget     int     `json:"budget"`
	EngineAuto string  `json:"engine_auto"`
	EngineOff  string  `json:"engine_off"`
	WallAuto   float64 `json:"wall_auto_sec"`
	WallOff    float64 `json:"wall_off_sec"`
}

// ReorderSuite is the persisted BENCH_9.json document.
type ReorderSuite struct {
	GeneratedAt   time.Time `json:"generated_at"`
	DefaultBudget int       `json:"default_budget"`
	// LargestCircuitCompleted is the largest circuit (by PIs) whose row
	// came from the exact engine ("" or "exact-sifted") at the default
	// budget — BENCH_8's frontier statistic restricted to exact
	// completions.
	LargestCircuitCompleted string `json:"largest_circuit_completed"`
	LargestCircuitPIs       int    `json:"largest_circuit_pis"`
	LargestCircuitPOs       int    `json:"largest_circuit_pos"`
	LargestCircuitEngine    string `json:"largest_circuit_engine"`
	// RowsIdenticalAcrossWorkers records the bit-identical gate over
	// WorkerCounts (wall-clock excepted).
	RowsIdenticalAcrossWorkers bool  `json:"rows_identical_across_workers"`
	WorkerCounts               []int `json:"worker_counts"`
	// RescuedTable1 is the frontier ladder: Table-1 circuits that
	// degraded in BENCH_8 and complete exact-sifted here.
	RescuedTable1 []RescueRow `json:"rescued_table1"`
	// CacheHitsOnResubmit records that resubmitting the corpus to an
	// in-process dominod was answered entirely from the
	// content-addressed cache without re-entering the flow.
	CacheHitsOnResubmit bool         `json:"cache_hits_on_resubmit"`
	Rows                []ReorderRow `json:"rows"`
}

// reorderBaseConfig is the BENCH_8 budgeted-corpus configuration (same
// estimator shape, same default budget) with the default ReorderAuto
// mode, so engine differences against BENCH_8 are attributable to
// reordering alone.
func reorderBaseConfig() flow.Config {
	return flow.Config{
		SimVectors:    256,
		SimShards:     2,
		MaxPairs:      24,
		EstOpts:       power.Options{Method: power.Exact, Depth: 3, MaxFrontier: 8},
		BDDNodeBudget: reorderDefaultBudget,
	}
}

// reorderCorpus is the sweep's circuit set: the Table-1 twins plus the
// beyond-Table-1 x4 frontier twin.
func reorderCorpus() []gen.NamedCircuit {
	return append(gen.Table1Circuits(), gen.X4())
}

// stripWall zeroes the wall-clock fields so rows can be compared for
// the deterministic contract (WallSec is the documented exception).
func stripWall(rows []*flow.CorpusRow) []flow.CorpusRow {
	out := make([]flow.CorpusRow, len(rows))
	for i, r := range rows {
		c := *r
		c.WallSec = 0
		out[i] = c
	}
	return out
}

// runReorderBench runs the ISSUE 9 reordering benchmark and writes
// BENCH_9.json to outPath. Four hard gates fail the run (and CI):
//
//   - every corpus row must be bit-identical (wall-clock excepted)
//     across per-circuit worker counts {1, 2, 8};
//   - the largest circuit completing on the exact engine at the
//     default budget must beat x3's 235 PIs (the x4 twin, rescued by
//     the exact-sifted stage where the plain chain degrades it);
//   - at least two Table-1 circuits that degraded in BENCH_8 must
//     complete exact-sifted on the frontier ladder — budgets at which
//     the reorder-free chain still degrades them;
//   - resubmitting the corpus to an in-process dominod must be served
//     entirely from the content-addressed cache (no flow re-entry),
//     with the exact-sifted engine intact in the cached rows.
func runReorderBench(outPath string) error {
	circuits := reorderCorpus()
	dir, err := os.MkdirTemp("", "reorderbench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	// Corpus rows carry the file-derived name (FileName: lowercased,
	// spaces stripped), so that is the lookup key throughout.
	byName := make(map[string]gen.NamedCircuit, len(circuits))
	for _, c := range circuits {
		byName[c.FileName()] = c
		m, err := blif.WriteString(&blif.Model{Network: c.Net})
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dir, c.FileName()+".blif"), []byte(m), 0o644); err != nil {
			return err
		}
	}
	entries, err := corpus.Discover(dir)
	if err != nil {
		return err
	}
	if len(entries) != len(circuits) {
		return fmt.Errorf("reorderbench: discovered %d corpus entries, want %d", len(entries), len(circuits))
	}

	suite := ReorderSuite{
		GeneratedAt:   time.Now().UTC(),
		DefaultBudget: reorderDefaultBudget,
		WorkerCounts:  reorderWorkerCounts,
	}

	// 1. Default-budget sweep, per-circuit workers {1, 2, 8}: the rows
	// are the deterministic contract's subject, so they must match
	// bit for bit (wall-clock excepted).
	runCorpus := func(workers int, configure func(*corpus.Circuit, flow.Config) flow.Config) ([]*flow.CorpusRow, error) {
		cfg := reorderBaseConfig()
		cfg.Workers = workers
		rows, err := flow.RunCorpus(context.Background(), entries, flow.CorpusConfig{
			Base:      cfg,
			Configure: configure,
		})
		if err != nil {
			return nil, err
		}
		for _, r := range rows {
			if r.Err != "" {
				return nil, fmt.Errorf("reorderbench: %s failed instead of degrading: %s", r.Name, r.Err)
			}
		}
		return rows, nil
	}
	var reference []*flow.CorpusRow
	suite.RowsIdenticalAcrossWorkers = true
	for _, w := range reorderWorkerCounts {
		t0 := time.Now()
		rows, err := runCorpus(w, nil)
		if err != nil {
			return err
		}
		fmt.Printf("reorderbench: corpus at budget %d, workers=%d: %d rows in %.1fs\n",
			reorderDefaultBudget, w, len(rows), time.Since(t0).Seconds())
		if reference == nil {
			reference = rows
			continue
		}
		if !reflect.DeepEqual(stripWall(reference), stripWall(rows)) {
			suite.RowsIdenticalAcrossWorkers = false
			fmt.Printf("reorderbench: MISMATCH corpus rows workers=%d vs workers=%d\n", w, reorderWorkerCounts[0])
		}
	}
	for _, r := range reference {
		c := byName[r.Name]
		suite.Rows = append(suite.Rows, ReorderRow{
			Circuit: r.Name, PIs: c.Net.NumInputs(), POs: c.Net.NumOutputs(),
			Budget: reorderDefaultBudget, Reorder: "auto",
			Engine: r.Engine, BudgetTrips: r.BudgetTrips, WallSec: r.WallSec,
		})
		exact := r.Engine == "" || r.Engine == flow.EngineExactSifted
		if exact && c.Net.NumInputs() >= suite.LargestCircuitPIs {
			suite.LargestCircuitCompleted = r.Name
			suite.LargestCircuitPIs = c.Net.NumInputs()
			suite.LargestCircuitPOs = c.Net.NumOutputs()
			suite.LargestCircuitEngine = r.Engine
		}
		fmt.Printf("reorderbench: %-12s engine=%-14q trips=%d wall=%.1fs\n", r.Name, r.Engine, r.BudgetTrips, r.WallSec)
	}

	// Control: the same corpus with reordering off — the PR-8 chain —
	// shows which engines the default budget forces without sifting.
	offRows, err := runCorpus(1, func(_ *corpus.Circuit, base flow.Config) flow.Config {
		base.BDDReorder = flow.ReorderOff
		return base
	})
	if err != nil {
		return err
	}
	for _, r := range offRows {
		c := byName[r.Name]
		suite.Rows = append(suite.Rows, ReorderRow{
			Circuit: r.Name, PIs: c.Net.NumInputs(), POs: c.Net.NumOutputs(),
			Budget: reorderDefaultBudget, Reorder: "off",
			Engine: r.Engine, BudgetTrips: r.BudgetTrips, WallSec: r.WallSec,
		})
	}

	// 2. Frontier ladder: Table-1 circuits that degraded in BENCH_8,
	// at the budgets where sifting (and only sifting) completes them
	// exactly. Run as one corpus so the circuits overlap; the worker
	// invariance of the rescued rows is re-checked at workers 1 and 8.
	ladder := map[string]int{"x3": 100000, "industry2": 300000}
	ladderConfigure := func(mode flow.BDDReorderMode) func(*corpus.Circuit, flow.Config) flow.Config {
		return func(c *corpus.Circuit, base flow.Config) flow.Config {
			if b, ok := ladder[c.Named.Name]; ok {
				base.BDDNodeBudget = b
			}
			base.BDDReorder = mode
			return base
		}
	}
	ladderEntries := entries[:0:0]
	for _, e := range entries {
		if _, ok := ladder[e.Name]; ok {
			ladderEntries = append(ladderEntries, e)
		}
	}
	if len(ladderEntries) != len(ladder) {
		return fmt.Errorf("reorderbench: frontier ladder matched %d entries, want %d", len(ladderEntries), len(ladder))
	}
	runLadder := func(workers int, mode flow.BDDReorderMode) ([]*flow.CorpusRow, error) {
		cfg := reorderBaseConfig()
		cfg.Workers = workers
		rows, err := flow.RunCorpus(context.Background(), ladderEntries, flow.CorpusConfig{
			Base:      cfg,
			Configure: ladderConfigure(mode),
		})
		if err != nil {
			return nil, err
		}
		for _, r := range rows {
			if r.Err != "" {
				return nil, fmt.Errorf("reorderbench: ladder %s failed: %s", r.Name, r.Err)
			}
		}
		return rows, nil
	}
	autoRows, err := runLadder(1, flow.ReorderAuto)
	if err != nil {
		return err
	}
	autoRows8, err := runLadder(8, flow.ReorderAuto)
	if err != nil {
		return err
	}
	if !reflect.DeepEqual(stripWall(autoRows), stripWall(autoRows8)) {
		suite.RowsIdenticalAcrossWorkers = false
		fmt.Println("reorderbench: MISMATCH frontier-ladder rows workers=8 vs workers=1")
	}
	offLadder, err := runLadder(1, flow.ReorderOff)
	if err != nil {
		return err
	}
	for i, r := range autoRows {
		off := offLadder[i]
		budget := ladder[r.Name]
		c := byName[r.Name]
		suite.RescuedTable1 = append(suite.RescuedTable1, RescueRow{
			Circuit: r.Name, Budget: budget,
			EngineAuto: r.Engine, EngineOff: off.Engine,
			WallAuto: r.WallSec, WallOff: off.WallSec,
		})
		suite.Rows = append(suite.Rows,
			ReorderRow{Circuit: r.Name, PIs: c.Net.NumInputs(), POs: c.Net.NumOutputs(),
				Budget: budget, Reorder: "auto", Engine: r.Engine, BudgetTrips: r.BudgetTrips, WallSec: r.WallSec},
			ReorderRow{Circuit: off.Name, PIs: c.Net.NumInputs(), POs: c.Net.NumOutputs(),
				Budget: budget, Reorder: "off", Engine: off.Engine, BudgetTrips: off.BudgetTrips, WallSec: off.WallSec},
		)
		fmt.Printf("reorderbench: ladder %-12s budget=%d auto=%-14q (%.1fs) off=%-14q (%.1fs)\n",
			r.Name, budget, r.Engine, r.WallSec, off.Engine, off.WallSec)
	}

	// 3. Cache round-trip: the sweep corpus submitted twice to an
	// in-process dominod; the resubmission must be all cache hits.
	hitsOK, err := reorderCacheCheck(dir, circuits)
	if err != nil {
		return err
	}
	suite.CacheHitsOnResubmit = hitsOK

	if err := writeReorderJSON(outPath, suite); err != nil {
		return err
	}
	fmt.Printf("reorderbench: largest exact completion: %s (%d PIs, engine %q); %d rescued Table-1 circuits; identical=%v; cache=%v -> %s\n",
		suite.LargestCircuitCompleted, suite.LargestCircuitPIs, suite.LargestCircuitEngine,
		len(suite.RescuedTable1), suite.RowsIdenticalAcrossWorkers, suite.CacheHitsOnResubmit, outPath)

	// Hard gates.
	if !suite.RowsIdenticalAcrossWorkers {
		return fmt.Errorf("reorderbench: corpus rows differ across worker counts %v", reorderWorkerCounts)
	}
	if suite.LargestCircuitPIs <= 235 {
		return fmt.Errorf("reorderbench: largest exact completion is %s (%d PIs), gate requires > 235 (x3)",
			suite.LargestCircuitCompleted, suite.LargestCircuitPIs)
	}
	rescued := 0
	for _, r := range suite.RescuedTable1 {
		if r.EngineAuto != flow.EngineExactSifted {
			return fmt.Errorf("reorderbench: ladder %s at budget %d landed on %q, want %q",
				r.Circuit, r.Budget, r.EngineAuto, flow.EngineExactSifted)
		}
		if r.EngineOff != flow.EngineDepthWeighted && r.EngineOff != flow.EngineMonteCarlo {
			return fmt.Errorf("reorderbench: ladder %s at budget %d completes %q without reordering — the budget no longer bites, raise the frontier",
				r.Circuit, r.Budget, r.EngineOff)
		}
		rescued++
	}
	if rescued < 2 {
		return fmt.Errorf("reorderbench: only %d Table-1 circuits rescued to exact-sifted, gate requires >= 2", rescued)
	}
	if !suite.CacheHitsOnResubmit {
		return fmt.Errorf("reorderbench: corpus resubmission re-entered the flow instead of hitting the cache")
	}
	return nil
}

// reorderCacheCheck submits the sweep corpus to an in-process dominod
// twice and verifies the second submission is answered entirely from
// the content-addressed cache — no flow re-entry — with the
// exact-sifted engine preserved in the cached rows.
func reorderCacheCheck(dir string, circuits []gen.NamedCircuit) (bool, error) {
	s := serve.NewServer(serve.Options{QueueDepth: 4, JobWorkers: 1, FlowWorkers: 2})
	s.Start()
	defer s.Drain()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return false, err
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	var buf bytes.Buffer
	tw := tar.NewWriter(&buf)
	for _, c := range circuits {
		data, err := os.ReadFile(filepath.Join(dir, c.FileName()+".blif"))
		if err != nil {
			return false, err
		}
		if err := tw.WriteHeader(&tar.Header{Name: c.FileName() + ".blif", Mode: 0o644, Size: int64(len(data))}); err != nil {
			return false, err
		}
		if _, err := tw.Write(data); err != nil {
			return false, err
		}
	}
	if err := tw.Close(); err != nil {
		return false, err
	}
	cfgJSON, err := json.Marshal(reorderBaseConfig())
	if err != nil {
		return false, err
	}

	type status struct {
		ID        string `json:"id"`
		State     string `json:"state"`
		CacheHits int    `json:"cache_hits"`
		Failed    int    `json:"failed"`
	}
	submit := func() (*status, int, error) {
		req, err := http.NewRequest("POST", base+"/v1/jobs?name=reorder.tar", bytes.NewReader(buf.Bytes()))
		if err != nil {
			return nil, 0, err
		}
		req.Header.Set("X-Dominod-Config", string(cfgJSON))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return nil, 0, err
		}
		defer resp.Body.Close()
		var st status
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			return nil, 0, err
		}
		return &st, resp.StatusCode, nil
	}
	engines := func(id string) (map[string]string, error) {
		resp, err := http.Get(base + "/v1/jobs/" + id + "/rows")
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, err
		}
		out := make(map[string]string)
		for _, line := range bytes.Split(bytes.TrimSpace(body), []byte("\n")) {
			var rec struct {
				Name   string `json:"name"`
				Engine string `json:"engine"`
				Error  string `json:"error"`
			}
			if err := json.Unmarshal(line, &rec); err != nil {
				return nil, err
			}
			if rec.Error != "" {
				return nil, fmt.Errorf("cached corpus row %s errored: %s", rec.Name, rec.Error)
			}
			out[rec.Name] = rec.Engine
		}
		return out, nil
	}

	first, code, err := submit()
	if err != nil {
		return false, err
	}
	if code != http.StatusAccepted && code != http.StatusOK {
		return false, fmt.Errorf("reorderbench: corpus submission rejected with %d", code)
	}
	firstEngines, err := engines(first.ID) // rows stream blocks until done
	if err != nil {
		return false, err
	}
	flowRuns := s.FlowRuns()

	second, code, err := submit()
	if err != nil {
		return false, err
	}
	// A fully cached submission completes at submit time with HTTP 200.
	if code != http.StatusOK || second.State != "done" || second.CacheHits != len(circuits) {
		fmt.Printf("reorderbench: resubmit not fully cached: status=%d state=%s hits=%d/%d\n",
			code, second.State, second.CacheHits, len(circuits))
		return false, nil
	}
	if s.FlowRuns() != flowRuns {
		fmt.Println("reorderbench: resubmit re-entered the flow")
		return false, nil
	}
	secondEngines, err := engines(second.ID)
	if err != nil {
		return false, err
	}
	if !reflect.DeepEqual(firstEngines, secondEngines) {
		fmt.Printf("reorderbench: cached engines diverge: %v vs %v\n", firstEngines, secondEngines)
		return false, nil
	}
	if secondEngines["x4"] != flow.EngineExactSifted {
		fmt.Printf("reorderbench: cached x4 engine = %q, want %q\n", secondEngines["x4"], flow.EngineExactSifted)
		return false, nil
	}
	return true, nil
}

func writeReorderJSON(path string, suite ReorderSuite) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(suite); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
