package main

import (
	"encoding/json"
	"fmt"
	"math/bits"
	"os"
	"reflect"
	"time"

	"repro/internal/domino"
	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/phase"
	"repro/internal/power"
	"repro/internal/prob"
)

// SearchRun is one strategy execution in the search benchmark.
type SearchRun struct {
	Strategy string  `json:"strategy"`
	Workers  int     `json:"workers"`
	WallSec  float64 `json:"wall_seconds"`
	Score    float64 `json:"score"`
}

// WideRun is one strategy outcome on a beyond-exhaustive twin.
type WideRun struct {
	Circuit  string  `json:"circuit"`
	Outputs  int     `json:"outputs"`
	Strategy string  `json:"strategy"`
	WallSec  float64 `json:"wall_seconds"`
	Score    float64 `json:"score"`
}

// SearchSuite is the persisted BENCH_4.json document: the ISSUE 4
// record for the incremental-score search strategies. On the k = 12
// twin it measures the per-candidate cost of a full cone-table rescore
// against one gray-code Flip and verifies that the gray-code exhaustive
// and the exact branch-and-bound return the bit-identical winner of the
// ascending-mask reference scan at every worker count. On the wide
// twins it runs the beyond-exhaustive strategies: exact branch-and-bound
// at k = 24, and annealing/greedy against the pairwise MinPower
// heuristic at k = 32. The run fails (non-zero exit, so the CI step
// gates on it) if any winner disagrees, if the flip speedup is below
// 10x, if branch-and-bound at k = 24 is beaten by any heuristic, or if
// annealing at k = 32 does not strictly beat the MinPower heuristic.
type SearchSuite struct {
	GeneratedAt time.Time `json:"generated_at"`
	Circuit     string    `json:"circuit"`
	Outputs     int       `json:"outputs"`
	Masks       int       `json:"masks"`

	TableBuildSec    float64 `json:"table_build_seconds"`
	RescoreNsPerMask float64 `json:"rescore_ns_per_mask"`
	FlipNsPerMask    float64 `json:"flip_ns_per_mask"`
	// FlipSpeedupX is the ISSUE's ≥ 10x per-candidate gate: full
	// cone-table rescore vs one incremental Flip.
	FlipSpeedupX float64 `json:"flip_speedup_x"`

	WinnerAssignment string      `json:"winner_assignment"`
	WinnerScore      float64     `json:"winner_score"`
	Runs             []SearchRun `json:"runs"`

	WideRuns []WideRun `json:"wide_runs"`
}

// measureSearchPair times the per-candidate cost of full rescoring vs
// gray-code flipping over the whole 2^k space. Each side runs `reps`
// sweeps per pass and the best of `passes` passes is kept (a warmup
// pass is discarded): the minimum is the standard noise-robust timing
// estimator, so scheduler interference on a shared CI runner inflates
// neither side and the gated ratio stays stable run to run.
func measureSearchPair(table *power.ConeTable, k, reps, passes int) (rescoreNs, flipNs float64, err error) {
	total := 1 << uint(k)
	buf := make(phase.Assignment, k)
	sink := 0.0
	sc := table.Fork()
	st := table.NewState()

	rescorePass := func() (float64, error) {
		t0 := time.Now()
		for r := 0; r < reps; r++ {
			for mask := 0; mask < total; mask++ {
				buf.SetMask(mask)
				s, sErr := sc.ScoreAssignment(buf)
				if sErr != nil {
					return 0, sErr
				}
				sink += s
			}
		}
		return float64(time.Since(t0).Nanoseconds()) / float64(total*reps), nil
	}
	flipPass := func() (float64, error) {
		for i := range buf {
			buf[i] = false
		}
		t0 := time.Now()
		for r := 0; r < reps; r++ {
			if _, sErr := st.Set(buf); sErr != nil {
				return 0, sErr
			}
			for c := 1; c < total; c++ {
				sink += st.Flip(bits.TrailingZeros(uint(c)))
			}
		}
		return float64(time.Since(t0).Nanoseconds()) / float64(total*reps), nil
	}

	best := func(pass func() (float64, error)) (float64, error) {
		if _, err := pass(); err != nil { // warmup, discarded
			return 0, err
		}
		min := 0.0
		for p := 0; p < passes; p++ {
			ns, err := pass()
			if err != nil {
				return 0, err
			}
			if p == 0 || ns < min {
				min = ns
			}
		}
		return min, nil
	}
	if rescoreNs, err = best(rescorePass); err != nil {
		return 0, 0, err
	}
	if flipNs, err = best(flipPass); err != nil {
		return 0, 0, err
	}
	if sink == 0 {
		return 0, 0, fmt.Errorf("searchbench: degenerate zero scores")
	}
	return rescoreNs, flipNs, nil
}

// runSearchBench measures the strategy stack and writes BENCH_4.json to
// outPath.
func runSearchBench(outPath string) error {
	c := synth12Circuit()
	net := flow.Prepare(c.Net)
	k := net.NumOutputs()
	total := 1 << uint(k)
	lib := domino.DefaultLibrary()
	probs := prob.Uniform(net, 0.5)

	suite := SearchSuite{
		GeneratedAt: time.Now().UTC(),
		Circuit:     c.Name,
		Outputs:     k,
		Masks:       total,
	}

	t0 := time.Now()
	table, err := power.NewConeTable(net, lib, probs, power.Options{})
	if err != nil {
		return fmt.Errorf("searchbench: %w", err)
	}
	suite.TableBuildSec = time.Since(t0).Seconds()

	// Reference winner: the ascending-mask scored scan.
	refAsg, _, refScore, err := phase.ExhaustiveScored(net, table, 1)
	if err != nil {
		return fmt.Errorf("searchbench: reference scan: %w", err)
	}
	suite.WinnerAssignment = refAsg.String()
	suite.WinnerScore = refScore

	// Winner agreement: gray-code exhaustive and branch-and-bound must
	// return the bit-identical (assignment, score) at every worker count.
	for _, strat := range []phase.SearchStrategy{phase.StrategyExhaustive, phase.StrategyBranchBound} {
		for _, workers := range []int{1, 2, 8} {
			t0 = time.Now()
			asg, _, score, err := phase.Search(net, phase.SearchOptions{
				Strategy: strat, Scorer: table, Workers: workers,
			})
			if err != nil {
				return fmt.Errorf("searchbench: %v workers=%d: %w", strat, workers, err)
			}
			suite.Runs = append(suite.Runs, SearchRun{
				Strategy: strat.String(), Workers: workers,
				WallSec: time.Since(t0).Seconds(), Score: score,
			})
			if score != refScore || !reflect.DeepEqual(asg, refAsg) {
				return fmt.Errorf("searchbench: %v workers=%d winner (%s, %v) != reference (%s, %v)",
					strat, workers, asg, score, refAsg, refScore)
			}
		}
	}

	// Per-candidate cost: full rescore vs one Flip, the ≥ 10x gate.
	suite.RescoreNsPerMask, suite.FlipNsPerMask, err = measureSearchPair(table, k, 25, 7)
	if err != nil {
		return err
	}
	suite.FlipSpeedupX = suite.RescoreNsPerMask / suite.FlipNsPerMask

	// Beyond-exhaustive regime: exact branch-and-bound at k = 24;
	// annealing and greedy vs the pairwise MinPower heuristic at k = 32.
	type wideScores struct{ mp, bb, anneal, greedy float64 }
	for _, wc := range []gen.NamedCircuit{gen.Wide24(), gen.Wide32()} {
		wnet := flow.Prepare(wc.Net)
		wk := wnet.NumOutputs()
		wprobs := prob.Uniform(wnet, 0.5)
		wtable, err := power.NewConeTable(wnet, lib, wprobs, power.Options{})
		if err != nil {
			return fmt.Errorf("searchbench: %s: %w", wc.Name, err)
		}
		var sc wideScores
		record := func(strategy string, score float64, wall time.Duration) {
			suite.WideRuns = append(suite.WideRuns, WideRun{
				Circuit: wc.Name, Outputs: wk, Strategy: strategy,
				WallSec: wall.Seconds(), Score: score,
			})
		}
		t0 = time.Now()
		_, _, mpScore, _, err := phase.MinPower(wnet, phase.PowerOptions{InputProbs: wprobs, Scorer: wtable})
		if err != nil {
			return fmt.Errorf("searchbench: %s MinPower: %w", wc.Name, err)
		}
		sc.mp = mpScore
		record("minpower", mpScore, time.Since(t0))
		for _, strat := range []phase.SearchStrategy{phase.StrategyGreedy, phase.StrategyAnneal} {
			t0 = time.Now()
			_, _, score, err := phase.Search(wnet, phase.SearchOptions{
				Strategy: strat, Scorer: wtable, Seed: 1,
			})
			if err != nil {
				return fmt.Errorf("searchbench: %s %v: %w", wc.Name, strat, err)
			}
			if strat == phase.StrategyAnneal {
				sc.anneal = score
			} else {
				sc.greedy = score
			}
			record(strat.String(), score, time.Since(t0))
		}
		if wk <= 24 {
			t0 = time.Now()
			_, _, score, err := phase.Search(wnet, phase.SearchOptions{
				Strategy: phase.StrategyBranchBound, Scorer: wtable,
			})
			if err != nil {
				return fmt.Errorf("searchbench: %s branch-and-bound: %w", wc.Name, err)
			}
			sc.bb = score
			record("bb", score, time.Since(t0))
			// Exactness smoke: the exact optimum can never be beaten.
			if sc.bb > sc.greedy || sc.bb > sc.anneal || sc.bb > sc.mp {
				return fmt.Errorf("searchbench: %s branch-and-bound %v beaten by a heuristic (mp %v greedy %v anneal %v)",
					wc.Name, sc.bb, sc.mp, sc.greedy, sc.anneal)
			}
		}
		if wk == 32 && !(sc.anneal < sc.mp) {
			return fmt.Errorf("searchbench: annealing %v does not strictly beat the MinPower heuristic %v on %s",
				sc.anneal, sc.mp, wc.Name)
		}
	}

	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(suite); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	fmt.Printf("cone table build       %10.2f ms\n", suite.TableBuildSec*1e3)
	fmt.Printf("full rescore per mask  %10.0f ns\n", suite.RescoreNsPerMask)
	fmt.Printf("gray flip per mask     %10.0f ns\n", suite.FlipNsPerMask)
	fmt.Printf("winner %s score %.6f (agreed across exhaustive/gray/bb, workers 1/2/8)\n",
		suite.WinnerAssignment, suite.WinnerScore)
	for _, w := range suite.WideRuns {
		fmt.Printf("%-8s k=%-3d %-9s score %12.6f  %8.2f ms\n",
			w.Circuit, w.Outputs, w.Strategy, w.Score, w.WallSec*1e3)
	}
	fmt.Printf("flip speedup: %.1fx -> %s\n", suite.FlipSpeedupX, outPath)

	if suite.FlipSpeedupX < 10 {
		return fmt.Errorf("searchbench: flip speedup %.1fx below the 10x gate", suite.FlipSpeedupX)
	}
	return nil
}
