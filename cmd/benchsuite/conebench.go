package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"reflect"
	"time"

	"repro/internal/domino"
	"repro/internal/flow"
	"repro/internal/phase"
	"repro/internal/power"
	"repro/internal/prob"
)

// ConeSearchRun is one full scored exhaustive search at a worker count.
type ConeSearchRun struct {
	Workers int     `json:"workers"`
	WallSec float64 `json:"wall_seconds"`
}

// ConeSuite is the persisted BENCH_3.json document: the ISSUE 3
// before/after record for the cone-table exhaustive phase search. The
// "before" is the naive path — every mask re-synthesizes the block
// (phase.Apply), re-maps it, and runs a fresh probability pass
// (power.Estimate); its per-mask cost is measured over a sampled mask
// prefix and extrapolated. The "after" is the full 2^k scored search,
// including the one-time cone-table build. The run fails (non-zero
// exit, so the CI smoke step gates on it) if the two scorers disagree
// on any sampled mask or on the winner, or if any worker count changes
// the winning (assignment, score), or if the speedup is below 100x.
type ConeSuite struct {
	GeneratedAt time.Time `json:"generated_at"`
	Circuit     string    `json:"circuit"`
	Outputs     int       `json:"outputs"`
	Masks       int       `json:"masks"`

	TableBuildSec   float64         `json:"table_build_seconds"`
	ConeRuns        []ConeSearchRun `json:"cone_runs"`
	ConeNsPerMask   float64         `json:"cone_ns_per_mask"`
	NaiveSample     int             `json:"naive_sample_masks"`
	NaiveNsPerMask  float64         `json:"naive_ns_per_mask"`
	NaiveFullSecEst float64         `json:"naive_full_seconds_estimated"`

	// SpeedupX compares the naive full-search estimate against the
	// 1-worker cone search including the table build — the ISSUE's
	// ≥ 100x gate.
	SpeedupX float64 `json:"speedup_x"`

	WinnerAssignment string  `json:"winner_assignment"`
	WinnerScore      float64 `json:"winner_score"`
	WinnerNaiveScore float64 `json:"winner_naive_score"`
	MaxRelDiff       float64 `json:"max_rel_diff"`
}

// relDiff is the relative disagreement between two scores.
func relDiff(a, b float64) float64 {
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return math.Abs(a-b) / scale
}

// runConeBench measures the cone-table exhaustive phase search against
// the naive per-mask path on the synth12 twin (k = 12, 4096 masks) and
// writes BENCH_3.json to outPath.
func runConeBench(outPath string) error {
	const agreeTol = 1e-6
	c := synth12Circuit()
	net := flow.Prepare(c.Net)
	k := net.NumOutputs()
	if k < 12 {
		return fmt.Errorf("conebench: twin has %d outputs, need >= 12", k)
	}
	total := 1 << uint(k)
	lib := domino.DefaultLibrary()
	probs := prob.Uniform(net, 0.5)
	estOpts := power.Options{}

	suite := ConeSuite{
		GeneratedAt: time.Now().UTC(),
		Circuit:     c.Name,
		Outputs:     k,
		Masks:       total,
	}

	// After: one cone-table build plus full scored searches.
	t0 := time.Now()
	table, err := power.NewConeTable(net, lib, probs, estOpts)
	if err != nil {
		return fmt.Errorf("conebench: %w", err)
	}
	suite.TableBuildSec = time.Since(t0).Seconds()

	var winAsg phase.Assignment
	var winScore float64
	for _, workers := range []int{1, 2, 8} {
		t0 = time.Now()
		asg, _, score, err := phase.ExhaustiveScored(net, table, workers)
		if err != nil {
			return fmt.Errorf("conebench: scored search (workers=%d): %w", workers, err)
		}
		wall := time.Since(t0).Seconds()
		suite.ConeRuns = append(suite.ConeRuns, ConeSearchRun{Workers: workers, WallSec: wall})
		if winAsg == nil {
			winAsg, winScore = asg, score
		} else if !reflect.DeepEqual(asg, winAsg) || score != winScore {
			return fmt.Errorf("conebench: winner drifted at workers=%d: (%s, %v) != (%s, %v)",
				workers, asg, score, winAsg, winScore)
		}
	}
	coneW1 := suite.ConeRuns[0].WallSec
	suite.ConeNsPerMask = coneW1 * 1e9 / float64(total)
	suite.WinnerAssignment = winAsg.String()
	suite.WinnerScore = winScore

	// Before: the naive per-mask Apply+Map+Estimate path, sampled over a
	// mask prefix and extrapolated (a full naive sweep is exactly the
	// cost this PR removes).
	sample := 256
	if sample > total {
		sample = total
	}
	suite.NaiveSample = sample
	eval := power.Evaluator(lib, probs, estOpts)
	asg := make(phase.Assignment, k)
	naiveStart := time.Now()
	naiveScores := make([]float64, sample)
	for mask := 0; mask < sample; mask++ {
		for i := 0; i < k; i++ {
			asg[i] = mask&(1<<uint(i)) != 0
		}
		res, err := phase.Apply(net, asg)
		if err != nil {
			return fmt.Errorf("conebench: naive Apply mask %d: %w", mask, err)
		}
		naiveScores[mask], err = eval(res)
		if err != nil {
			return fmt.Errorf("conebench: naive eval mask %d: %w", mask, err)
		}
	}
	naiveWall := time.Since(naiveStart).Seconds()
	suite.NaiveNsPerMask = naiveWall * 1e9 / float64(sample)
	suite.NaiveFullSecEst = suite.NaiveNsPerMask * float64(total) / 1e9
	suite.SpeedupX = suite.NaiveFullSecEst / (suite.TableBuildSec + coneW1)

	// Agreement gate: cached-cone scores must match the naive scores on
	// every sampled mask and on the winner.
	for mask := 0; mask < sample; mask++ {
		for i := 0; i < k; i++ {
			asg[i] = mask&(1<<uint(i)) != 0
		}
		got, err := table.ScoreAssignment(asg)
		if err != nil {
			return err
		}
		if d := relDiff(got, naiveScores[mask]); d > suite.MaxRelDiff {
			suite.MaxRelDiff = d
		}
	}
	winRes, err := phase.Apply(net, winAsg)
	if err != nil {
		return err
	}
	suite.WinnerNaiveScore, err = eval(winRes)
	if err != nil {
		return err
	}
	if d := relDiff(winScore, suite.WinnerNaiveScore); d > suite.MaxRelDiff {
		suite.MaxRelDiff = d
	}
	if suite.MaxRelDiff > agreeTol {
		return fmt.Errorf("conebench: cone-table and naive evaluator disagree: max rel diff %v > %v",
			suite.MaxRelDiff, agreeTol)
	}

	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(suite); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	fmt.Printf("cone table build      %10.2f ms\n", suite.TableBuildSec*1e3)
	for _, r := range suite.ConeRuns {
		fmt.Printf("cone search w=%d       %10.2f ms (%d masks)\n", r.Workers, r.WallSec*1e3, total)
	}
	fmt.Printf("cone per mask         %10.0f ns\n", suite.ConeNsPerMask)
	fmt.Printf("naive per mask        %10.0f ns (sampled %d)\n", suite.NaiveNsPerMask, sample)
	fmt.Printf("winner %s score %.6f (naive %.6f, max rel diff %.2e)\n",
		suite.WinnerAssignment, suite.WinnerScore, suite.WinnerNaiveScore, suite.MaxRelDiff)
	fmt.Printf("speedup: %.0fx -> %s\n", suite.SpeedupX, outPath)

	if suite.SpeedupX < 100 {
		return fmt.Errorf("conebench: speedup %.1fx below the 100x gate", suite.SpeedupX)
	}
	return nil
}
