// Command bddorder compares BDD sizes under the paper's variable-ordering
// heuristic and baselines (Section 4.2.2, Figure 10), on a BLIF circuit
// or on the built-in Figure 10 example.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/bdd"
	"repro/internal/blif"
	"repro/internal/logic"
	"repro/internal/order"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bddorder: ")
	blifPath := flag.String("blif", "", "BLIF file (default: the paper's Figure 10 circuit)")
	sift := flag.Bool("sift", false, "also run sifting from the heuristic order")
	seed := flag.Int64("seed", 1, "seed for the random baseline")
	flag.Parse()

	var net *logic.Network
	if *blifPath == "" {
		net = figure10()
		fmt.Println("circuit: Figure 10 (P = x1·x2·x3, Q = x3·x4, R = P+Q+x5)")
	} else {
		f, err := os.Open(*blifPath)
		if err != nil {
			log.Fatal(err)
		}
		m, err := blif.Parse(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		net = m.Network
		fmt.Printf("circuit: %s (%d PIs, %d POs, %d gates)\n",
			net.Name, net.NumInputs(), net.NumOutputs(), net.GateCount())
	}

	// The paper's Figure 10 counts the shared BDD nodes of the non-input
	// circuit nodes (P, Q, R in the example).
	gateRoots := func(nb *bdd.NetworkBDDs) []bdd.Ref {
		var roots []bdd.Ref
		for i := 0; i < net.NumNodes(); i++ {
			if net.Kind(logic.NodeID(i)).IsGate() {
				roots = append(roots, nb.NodeRefs[i])
			}
		}
		return roots
	}
	count := func(ord []int) int {
		nb, err := bdd.BuildNetwork(net, ord)
		if err != nil {
			log.Fatal(err)
		}
		return nb.Manager.NodeCount(gateRoots(nb)...)
	}
	fmt.Printf("%-28s %10s\n", "ordering", "BDD nodes")
	revOrd := order.ReverseTopological(net)
	fmt.Printf("%-28s %10d   (the paper's heuristic)\n", "reverse-topological", count(revOrd))
	fmt.Printf("%-28s %10d\n", "topological", count(order.Topological(net)))
	fmt.Printf("%-28s %10d\n", "natural (declaration)", count(order.Natural(net)))
	fmt.Printf("%-28s %10d\n", "dfs", count(order.DFS(net)))
	fmt.Printf("%-28s %10d\n", "random", count(order.Random(net, *seed)))
	if *sift {
		nb, err := bdd.BuildNetwork(net, revOrd)
		if err != nil {
			log.Fatal(err)
		}
		_, c := bdd.Sift(nb.Manager, gateRoots(nb))
		fmt.Printf("%-28s %10d   (extension)\n", "sifting from heuristic", c)
	}
}

func figure10() *logic.Network {
	n := logic.New("fig10")
	x1 := n.AddInput("x1")
	x2 := n.AddInput("x2")
	x3 := n.AddInput("x3")
	x4 := n.AddInput("x4")
	x5 := n.AddInput("x5")
	p := n.AddAnd(x1, x2, x3)
	q := n.AddAnd(x3, x4)
	r := n.AddOr(p, q, x5)
	n.MarkOutput("P", p)
	n.MarkOutput("Q", q)
	n.MarkOutput("R", r)
	return n
}
