// Command bddorder compares BDD sizes under the paper's variable-ordering
// heuristic and baselines (Section 4.2.2, Figure 10), on a BLIF circuit
// or on the built-in Figure 10 example.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/bdd"
	"repro/internal/blif"
	"repro/internal/logic"
	"repro/internal/order"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bddorder: ")
	blifPath := flag.String("blif", "", "BLIF file (default: the paper's Figure 10 circuit)")
	sift := flag.Bool("sift", false, "also compare sifting variants from the heuristic order")
	seed := flag.Int64("seed", 1, "seed for the random baseline")
	flag.Parse()

	var net *logic.Network
	if *blifPath == "" {
		net = figure10()
		fmt.Println("circuit: Figure 10 (P = x1·x2·x3, Q = x3·x4, R = P+Q+x5)")
	} else {
		f, err := os.Open(*blifPath)
		if err != nil {
			log.Fatal(err)
		}
		m, err := blif.Parse(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		net = m.Network
		fmt.Printf("circuit: %s (%d PIs, %d POs, %d gates)\n",
			net.Name, net.NumInputs(), net.NumOutputs(), net.GateCount())
	}

	// The paper's Figure 10 counts the shared BDD nodes of the non-input
	// circuit nodes (P, Q, R in the example).
	gateRoots := func(nb *bdd.NetworkBDDs) []bdd.Ref {
		var roots []bdd.Ref
		for i := 0; i < net.NumNodes(); i++ {
			if net.Kind(logic.NodeID(i)).IsGate() {
				roots = append(roots, nb.NodeRefs[i])
			}
		}
		return roots
	}
	count := func(ord []int) int {
		nb, err := bdd.BuildNetwork(net, ord)
		if err != nil {
			log.Fatal(err)
		}
		return nb.Manager.NodeCount(gateRoots(nb)...)
	}
	fmt.Printf("%-28s %10s\n", "ordering", "BDD nodes")
	revOrd := order.ReverseTopological(net)
	fmt.Printf("%-28s %10d   (the paper's heuristic)\n", "reverse-topological", count(revOrd))
	fmt.Printf("%-28s %10d\n", "topological", count(order.Topological(net)))
	fmt.Printf("%-28s %10d\n", "natural (declaration)", count(order.Natural(net)))
	fmt.Printf("%-28s %10d\n", "dfs", count(order.DFS(net)))
	fmt.Printf("%-28s %10d\n", "random", count(order.Random(net, *seed)))
	if *sift {
		// Two sifting implementations of the same algorithm: the
		// rebuild-based oracle re-interns the whole table per candidate
		// position and minimizes the shared node count of the gate roots;
		// the in-place engine swaps adjacent levels inside one manager and
		// minimizes its whole live table (every network node stays
		// protected, inputs included), so the two may park on slightly
		// different orders. The wall-time column is the point of the
		// in-place one.
		nb, err := bdd.BuildNetwork(net, revOrd)
		if err != nil {
			log.Fatal(err)
		}
		roots := gateRoots(nb)
		fmt.Printf("\n%-28s %10s %14s\n", "sifting from heuristic", "BDD nodes", "wall time")
		fmt.Printf("%-28s %10d %14s\n", "no sifting", nb.Manager.NodeCount(roots...), "-")

		t0 := time.Now()
		siftOrd, siftCount := bdd.Sift(nb.Manager, roots)
		siftElapsed := time.Since(t0)
		fmt.Printf("%-28s %10d %14s\n", "rebuild sift (oracle)", siftCount, siftElapsed.Round(time.Microsecond))

		// The sifted order is a usable artifact, not just a size probe:
		// rebuilding under it must land on the oracle's count exactly.
		rb, err := bdd.BuildNetwork(net, siftOrd)
		if err != nil {
			log.Fatal(err)
		}
		if c := rb.Manager.NodeCount(gateRoots(rb)...); c != siftCount {
			log.Fatalf("rebuild under sifted order gives %d nodes, oracle reported %d", c, siftCount)
		}

		ip, err := bdd.BuildNetwork(net, revOrd)
		if err != nil {
			log.Fatal(err)
		}
		ipRoots := gateRoots(ip)
		t1 := time.Now()
		if err := ip.Manager.Reorder(); err != nil {
			log.Fatal(err)
		}
		ipElapsed := time.Since(t1)
		fmt.Printf("%-28s %10d %14s\n", "in-place reorder", ip.Manager.NodeCount(ipRoots...), ipElapsed.Round(time.Microsecond))
	}
}

func figure10() *logic.Network {
	n := logic.New("fig10")
	x1 := n.AddInput("x1")
	x2 := n.AddInput("x2")
	x3 := n.AddInput("x3")
	x4 := n.AddInput("x4")
	x5 := n.AddInput("x5")
	p := n.AddAnd(x1, x2, x3)
	q := n.AddAnd(x3, x4)
	r := n.AddOr(p, q, x5)
	n.MarkOutput("P", p)
	n.MarkOutput("Q", q)
	n.MarkOutput("R", r)
	return n
}
