// Command mfvspart partitions a sequential circuit for power estimation:
// it builds the s-graph, runs the enhanced MFVS (with the paper's
// symmetry-based supervertex transformation, Figure 9), cuts the feedback
// flip-flops and reports the resulting combinational block and
// steady-state probabilities.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"repro/internal/blif"
	"repro/internal/gen"
	"repro/internal/seq"
	"repro/internal/sgraph"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mfvspart: ")
	blifPath := flag.String("blif", "", "sequential BLIF file (default: a generated example)")
	ffs := flag.Int("ffs", 16, "flip-flop count for the generated example")
	gates := flag.Int("gates", 80, "gate count for the generated example")
	seed := flag.Int64("seed", 1, "seed for the generated example")
	p := flag.Float64("p", 0.5, "primary input signal probability")
	noSymmetry := flag.Bool("nosym", false, "disable the symmetry supervertex transformation")
	flag.Parse()

	var c *seq.Circuit
	var err error
	if *blifPath != "" {
		f, oErr := os.Open(*blifPath)
		if oErr != nil {
			log.Fatal(oErr)
		}
		m, pErr := blif.Parse(f)
		f.Close()
		if pErr != nil {
			log.Fatal(pErr)
		}
		c, err = seq.FromModel(m)
	} else {
		c, err = gen.Sequential(gen.SeqParams{
			Name: "example", Inputs: 8, FFs: *ffs, Gates: *gates, Seed: *seed, TwinProb: 0.5,
		})
	}
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("circuit: %s — %d FFs, %d real PIs, %d real POs\n",
		c.Comb.Name, len(c.FFs), len(c.RealInputs), len(c.RealOutputs))

	g := c.SGraph()
	edges := 0
	for u := 0; u < len(c.FFs); u++ {
		for v := 0; v < len(c.FFs); v++ {
			if g.HasEdge(u, v) {
				edges++
			}
		}
	}
	fmt.Printf("s-graph: %d vertices, %d edges\n", len(c.FFs), edges)

	opts := sgraph.DefaultOptions()
	opts.Symmetry = !*noSymmetry
	sol := sgraph.MFVS(g, opts)
	names := make([]string, 0, len(sol.Vertices))
	for _, v := range sol.Vertices {
		names = append(names, g.Name(v))
	}
	sort.Strings(names)
	fmt.Printf("MFVS (symmetry=%v): weight %d, cut %v\n", opts.Symmetry, sol.Weight, names)

	part, err := c.Partition(sol.Vertices)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("partitioned block: %d nodes, %d inputs (%d pseudo from cut FFs), %d outputs\n",
		part.Block.NumNodes(), part.Block.NumInputs(), part.PseudoInputCount(), part.Block.NumOutputs())

	probs := make([]float64, c.Comb.NumInputs())
	for _, pos := range c.RealInputs {
		probs[pos] = *p
	}
	_, nodeProbs, err := c.SteadyStateProbs(seq.SteadyOptions{InputProbs: probs, Cut: sol.Vertices})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("steady-state next-state probabilities of cut flip-flops:")
	for _, ffIdx := range sol.Vertices {
		name := "ns_" + c.FFs[ffIdx].Name
		oi := part.Block.OutputByName(name)
		if oi < 0 {
			continue
		}
		fmt.Printf("  %-12s %.4f\n", c.FFs[ffIdx].Name, nodeProbs[part.Block.Outputs()[oi].Driver])
	}
}
