// Command dominoflow runs the paper's synthesis flows on the benchmark
// twins and prints Table 1 / Table 2 in the paper's layout.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dominoflow: ")
	table := flag.Int("table", 1, "paper table to regenerate (1 or 2)")
	circuit := flag.String("circuit", "", "run a single named circuit (e.g. frg1)")
	vectors := flag.Int("vectors", 4096, "Monte-Carlo measurement vectors")
	maxPairs := flag.Int("maxpairs", 0, "cap MinPower candidate pairs (0 = all)")
	csv := flag.Bool("csv", false, "emit CSV instead of the formatted table")
	verbose := flag.Bool("v", false, "log per-circuit progress")
	seqMode := flag.Bool("seq", false, "run the sequential flow (enhanced-MFVS partitioning + phase assignment) on generated sequential circuits")
	seqFFs := flag.Int("seqffs", 16, "flip-flop count for -seq circuits")
	seqCount := flag.Int("seqcount", 3, "number of -seq circuits")
	flag.Parse()

	cfg := flow.Config{SimVectors: *vectors, MaxPairs: *maxPairs}

	if *seqMode {
		runSequential(cfg, *seqFFs, *seqCount, *verbose)
		return
	}

	var circuits []gen.NamedCircuit
	switch *table {
	case 1:
		circuits = gen.Table1Circuits()
	case 2:
		circuits = gen.Table2Circuits()
	default:
		log.Fatalf("unknown table %d", *table)
	}
	if *circuit != "" {
		var filtered []gen.NamedCircuit
		for _, c := range circuits {
			if c.Name == *circuit {
				filtered = append(filtered, c)
			}
		}
		if len(filtered) == 0 {
			log.Fatalf("no circuit named %q in table %d", *circuit, *table)
		}
		circuits = filtered
	}

	var rows []*flow.Row
	for _, c := range circuits {
		start := time.Now()
		var row *flow.Row
		var err error
		if *table == 1 {
			row, err = flow.RunCircuit(c, cfg)
		} else {
			row, err = flow.RunCircuitTimed(c, cfg)
		}
		if err != nil {
			log.Fatalf("%s: %v", c.Name, err)
		}
		if *verbose {
			log.Printf("%-12s done in %v (MA %d cells / %.2f, MP %d cells / %.2f)",
				c.Name, time.Since(start).Round(time.Millisecond),
				row.MA.Size, row.MA.SimPower, row.MP.Size, row.MP.SimPower)
		}
		rows = append(rows, row)
	}
	title := fmt.Sprintf("Table %d: synthesis with PI signal probabilities 0.5", *table)
	if *table == 2 {
		title = "Table 2: timed synthesis (resizing) with PI signal probabilities 0.5"
	}
	if *csv {
		fmt.Print(report.CSV(rows))
	} else {
		fmt.Print(report.Table(title, rows))
	}
	os.Exit(0)
}

// runSequential exercises the Section 4.2 sequential pipeline on
// generated circuits and prints MA/MP rows — an experiment beyond the
// paper's tables (the paper measures combinational blocks after
// partitioning; here the partitioning itself is automated).
func runSequential(cfg flow.Config, ffs, count int, verbose bool) {
	fmt.Println("Sequential flow: enhanced-MFVS partition + steady-state probabilities + phase assignment")
	fmt.Printf("%-10s %5s %5s %7s | %6s %9s | %6s %9s | %9s %9s\n",
		"circuit", "#FFs", "cut", "pseudo", "MA sz", "MA pwr", "MP sz", "MP pwr", "%AreaPen", "%PwrSav")
	for i := 0; i < count; i++ {
		c, err := gen.Sequential(gen.SeqParams{
			Name:   fmt.Sprintf("seq%d", i),
			Inputs: 8 + i*2, FFs: ffs, Gates: 60 + 30*i,
			Seed: int64(100 + i), TwinProb: 0.5,
		})
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		row, err := flow.RunSequential(c, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if verbose {
			log.Printf("%s done in %v", row.Name, time.Since(start).Round(time.Millisecond))
		}
		fmt.Printf("%-10s %5d %5d %7d | %6d %9.3f | %6d %9.3f | %9.1f %9.1f\n",
			row.Name, row.FFs, row.Cut, row.PseudoInputs,
			row.MA.Size, row.MA.SimPower, row.MP.Size, row.MP.SimPower,
			row.AreaPenaltyPct, row.PowerSavingPct)
	}
}
