// Command dominoflow runs the paper's synthesis flows and prints
// Table 1 / Table 2 in the paper's layout.
//
// By default it runs the generated benchmark twins. With -blif, -pla, or
// -dir it instead streams real circuit files through the concurrent
// corpus engine: every .blif/.pla file found is parsed, latched models
// are routed through the partitioned sequential flow (like -seq), and
// the batch runs circuits concurrently with per-circuit error isolation
// — a corrupt file yields an error row, never a failed batch. Rows are
// deterministic at any -workers count; -jsonl streams them as they
// finish.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"time"

	"repro/internal/corpus"
	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dominoflow: ")
	table := flag.Int("table", 1, "paper table to regenerate (1 or 2); in corpus mode, 2 selects the timed flow")
	circuit := flag.String("circuit", "", "run a single named circuit (e.g. frg1)")
	vectors := flag.Int("vectors", 4096, "Monte-Carlo measurement vectors")
	maxPairs := flag.Int("maxpairs", 0, "cap MinPower candidate pairs (0 = all)")
	csv := flag.Bool("csv", false, "emit CSV instead of the formatted table")
	verbose := flag.Bool("v", false, "log per-circuit progress")
	seqMode := flag.Bool("seq", false, "run the sequential flow (enhanced-MFVS partitioning + phase assignment) on generated sequential circuits")
	seqFFs := flag.Int("seqffs", 16, "flip-flop count for -seq circuits")
	seqCount := flag.Int("seqcount", 3, "number of -seq circuits")
	blifFiles := flag.String("blif", "", "comma-separated BLIF files to run through the corpus engine")
	plaFiles := flag.String("pla", "", "comma-separated PLA files to run through the corpus engine")
	dir := flag.String("dir", "", "comma-separated directories (or glob patterns) of .blif/.pla files to run through the corpus engine")
	workers := flag.Int("workers", 0, "corpus mode: how many circuits run concurrently (0 = GOMAXPROCS); never changes results")
	timeout := flag.Duration("timeout", 0, "corpus mode: per-circuit wall-clock cap (0 = none)")
	jsonl := flag.String("jsonl", "", "corpus mode: stream result rows as JSONL to this file ('-' for stdout)")
	checkTwins := flag.Bool("check-twins", false, "corpus mode: rerun circuits whose names match generated twins through the direct in-memory flow and fail on row disagreement (the corpussmoke gate)")
	flag.Parse()

	if *table != 1 && *table != 2 {
		log.Fatalf("unknown table %d", *table)
	}

	cfg := flow.Config{SimVectors: *vectors, MaxPairs: *maxPairs}

	if *seqMode {
		runSequential(cfg, *seqFFs, *seqCount, *verbose)
		return
	}

	var paths []string
	for _, list := range []string{*blifFiles, *plaFiles, *dir} {
		paths = append(paths, corpus.SplitList(list)...)
	}
	if len(paths) > 0 {
		runCorpus(cfg, paths, corpusOptions{
			timed:      *table == 2,
			workers:    *workers,
			timeout:    *timeout,
			jsonl:      *jsonl,
			csv:        *csv,
			verbose:    *verbose,
			checkTwins: *checkTwins,
		})
		return
	}

	circuits := gen.Table1Circuits()
	if *table == 2 {
		circuits = gen.Table2Circuits()
	}
	if *circuit != "" {
		var filtered []gen.NamedCircuit
		for _, c := range circuits {
			if c.Name == *circuit {
				filtered = append(filtered, c)
			}
		}
		if len(filtered) == 0 {
			log.Fatalf("no circuit named %q in table %d", *circuit, *table)
		}
		circuits = filtered
	}

	var rows []*flow.Row
	for _, c := range circuits {
		start := time.Now()
		var row *flow.Row
		var err error
		if *table == 1 {
			row, err = flow.RunCircuit(c, cfg)
		} else {
			row, err = flow.RunCircuitTimed(c, cfg)
		}
		if err != nil {
			log.Fatalf("%s: %v", c.Name, err)
		}
		if *verbose {
			log.Printf("%-12s done in %v (MA %d cells / %.2f, MP %d cells / %.2f)",
				c.Name, time.Since(start).Round(time.Millisecond),
				row.MA.Size, row.MA.SimPower, row.MP.Size, row.MP.SimPower)
		}
		rows = append(rows, row)
	}
	title := fmt.Sprintf("Table %d: synthesis with PI signal probabilities 0.5", *table)
	if *table == 2 {
		title = "Table 2: timed synthesis (resizing) with PI signal probabilities 0.5"
	}
	if *csv {
		fmt.Print(report.CSV(rows))
	} else {
		fmt.Print(report.Table(title, rows))
	}
	os.Exit(0)
}

type corpusOptions struct {
	timed      bool
	workers    int
	timeout    time.Duration
	jsonl      string
	csv        bool
	verbose    bool
	checkTwins bool
}

// runCorpus streams discovered circuit files through the concurrent
// corpus engine and prints the batch report. It exits non-zero when any
// circuit failed (the batch itself always completes) or when
// -check-twins finds a disagreement.
func runCorpus(cfg flow.Config, paths []string, opts corpusOptions) {
	entries, err := corpus.Discover(paths...)
	if err != nil {
		log.Fatal(err)
	}
	if len(entries) == 0 {
		log.Fatal("no .blif/.pla files found")
	}
	// Parallelism lives at the circuit grain; each circuit's flow runs
	// single-worker so concurrent circuits don't oversubscribe the CPU.
	// Neither knob changes results.
	cfg.Workers = 1

	var jw io.Writer
	if opts.jsonl == "-" {
		jw = os.Stdout
	} else if opts.jsonl != "" {
		f, err := os.Create(opts.jsonl)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		jw = f
	}

	start := time.Now()
	rows, err := flow.RunCorpus(context.Background(), entries, flow.CorpusConfig{
		Base:    cfg,
		Timed:   opts.timed,
		Workers: opts.workers,
		Timeout: opts.timeout,
		OnRow: func(r *flow.CorpusRow) {
			if opts.verbose {
				status := "ok"
				if r.Err != "" {
					status = r.Err
				}
				log.Printf("%-20s done in %6.2fs (%s)", r.Name, r.WallSec, status)
			}
			if jw != nil {
				if err := report.WriteCorpusJSONL(jw, r); err != nil {
					log.Fatal(err)
				}
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	flowName := "untimed (Table 1) flow"
	if opts.timed {
		flowName = "timed (Table 2) flow"
	}
	title := fmt.Sprintf("Corpus: %d circuit(s) through the %s in %.1fs",
		len(rows), flowName, time.Since(start).Seconds())
	if opts.csv {
		// CSV carries only combinational rows; sequential and failed
		// rows go to stderr so they are never silently dropped.
		var comb []*flow.Row
		seqCount := 0
		for _, r := range rows {
			switch {
			case r.Row != nil:
				comb = append(comb, r.Row)
			case r.SeqRow != nil:
				seqCount++
			}
		}
		fmt.Print(report.CSV(comb))
		if seqCount > 0 {
			log.Printf("%d sequential circuit(s) omitted from CSV (use -jsonl for the full batch)", seqCount)
		}
		for _, r := range rows {
			if r.Err != "" {
				log.Printf("failed: %s: %s", r.Path, r.Err)
			}
		}
	} else {
		fmt.Print(report.CorpusTable(title, rows))
	}

	failed := 0
	for _, r := range rows {
		if r.Err != "" {
			failed++
		}
	}
	if opts.checkTwins && !checkTwins(rows, cfg, opts.timed) {
		os.Exit(1)
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// checkTwins is the corpussmoke gate: every corpus row whose file name
// matches a generated twin (as emitted by genbench) is recomputed with
// the direct in-memory flow and the two rows must agree — sizes exactly,
// measured/estimated power to float-noise tolerance (the BLIF round trip
// may reorder nodes, which can reorder float summation without changing
// any value materially).
func checkTwins(rows []*flow.CorpusRow, cfg flow.Config, timed bool) bool {
	twins := make(map[string]gen.NamedCircuit)
	for _, c := range gen.KnownCircuits() {
		twins[c.FileName()] = c
	}
	checked, ok := 0, true
	for _, r := range rows {
		twin, found := twins[r.Name]
		if !found {
			continue
		}
		checked++
		if r.Err != "" {
			log.Printf("check-twins: %s: corpus row failed: %s", r.Name, r.Err)
			ok = false
			continue
		}
		if r.Row == nil {
			log.Printf("check-twins: %s: no combinational row", r.Name)
			ok = false
			continue
		}
		var direct *flow.Row
		var err error
		if timed {
			direct, err = flow.RunCircuitTimed(twin, cfg)
		} else {
			direct, err = flow.RunCircuit(twin, cfg)
		}
		if err != nil {
			log.Printf("check-twins: %s: direct flow failed: %v", r.Name, err)
			ok = false
			continue
		}
		ok = compareRows(r.Name, r.Row, direct) && ok
	}
	if checked == 0 {
		log.Print("check-twins: no corpus row matched a generated twin")
		return false
	}
	if ok {
		log.Printf("check-twins: %d twin row(s) agree with the direct flow", checked)
	}
	return ok
}

func compareRows(name string, got, want *flow.Row) bool {
	ok := true
	fail := func(format string, args ...any) {
		log.Printf("check-twins: %s: "+format, append([]any{name}, args...)...)
		ok = false
	}
	if got.PIs != want.PIs || got.POs != want.POs {
		fail("interface %d/%d, want %d/%d", got.PIs, got.POs, want.PIs, want.POs)
	}
	if got.MA.Size != want.MA.Size {
		fail("MA size %d, want %d", got.MA.Size, want.MA.Size)
	}
	if got.MP.Size != want.MP.Size {
		fail("MP size %d, want %d", got.MP.Size, want.MP.Size)
	}
	const tol = 1e-9
	closeEnough := func(a, b float64) bool {
		return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	}
	for _, c := range []struct {
		what     string
		got, wnt float64
	}{
		{"MA measured power", got.MA.SimPower, want.MA.SimPower},
		{"MP measured power", got.MP.SimPower, want.MP.SimPower},
		{"MA estimated power", got.MA.EstPower, want.MA.EstPower},
		{"MP estimated power", got.MP.EstPower, want.MP.EstPower},
	} {
		if !closeEnough(c.got, c.wnt) {
			fail("%s %.12g, want %.12g", c.what, c.got, c.wnt)
		}
	}
	return ok
}

// runSequential exercises the Section 4.2 sequential pipeline on
// generated circuits and prints MA/MP rows — an experiment beyond the
// paper's tables (the paper measures combinational blocks after
// partitioning; here the partitioning itself is automated).
func runSequential(cfg flow.Config, ffs, count int, verbose bool) {
	var rows []*flow.SequentialRow
	for i := 0; i < count; i++ {
		c, err := gen.Sequential(gen.SeqParams{
			Name:   fmt.Sprintf("seq%d", i),
			Inputs: 8 + i*2, FFs: ffs, Gates: 60 + 30*i,
			Seed: int64(100 + i), TwinProb: 0.5,
		})
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		row, err := flow.RunSequential(c, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if verbose {
			log.Printf("%s done in %v", row.Name, time.Since(start).Round(time.Millisecond))
		}
		rows = append(rows, row)
	}
	fmt.Print(report.SequentialTable(
		"Sequential flow: enhanced-MFVS partition + steady-state probabilities + phase assignment", rows))
}
