// bdd_ordering: reproduces Figure 10 — the paper's reverse-topological
// BDD variable ordering versus the plain topological and a "disturbed"
// order, on the P/Q/R circuit, and shows the effect at scale on a larger
// generated control block.
package main

import (
	"fmt"
	"log"

	"repro/internal/bdd"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/order"
)

func main() {
	fig10 := figure10()
	fmt.Println("Figure 10 circuit: P = x1·x2·x3, Q = x3·x4, R = P + Q + x5")
	fmt.Printf("%-34s %8s %s\n", "ordering", "nodes", "(paper)")
	show(fig10, "reverse-topological [x5..x1]", order.ReverseTopological(fig10), "7")
	show(fig10, "topological [x1..x5]", order.Topological(fig10), "11")
	show(fig10, "disturbed [x5,x1,x4,x3,x2]", []int{4, 0, 3, 2, 1}, "9")

	// The paper argues real domino blocks, with much larger fanouts and
	// convergence, benefit more. Demonstrate on a generated block.
	big := gen.Generate(gen.Params{Name: "block", Inputs: 18, Outputs: 6, Gates: 220, Seed: 11, OrProb: 0.6})
	fmt.Printf("\ngenerated control block: %d inputs, %d gates\n", big.NumInputs(), big.GateCount())
	fmt.Printf("%-34s %8s\n", "ordering", "nodes")
	show(big, "reverse-topological", order.ReverseTopological(big), "")
	show(big, "topological", order.Topological(big), "")
	show(big, "natural", order.Natural(big), "")
	show(big, "random", order.Random(big, 3), "")
}

func show(n *logic.Network, label string, ord []int, paper string) {
	nb, err := bdd.BuildNetwork(n, ord)
	if err != nil {
		log.Fatal(err)
	}
	var roots []bdd.Ref
	for i := 0; i < n.NumNodes(); i++ {
		if n.Kind(logic.NodeID(i)).IsGate() {
			roots = append(roots, nb.NodeRefs[i])
		}
	}
	count := nb.Manager.NodeCount(roots...)
	if paper != "" {
		fmt.Printf("%-34s %8d (%s)\n", label, count, paper)
	} else {
		fmt.Printf("%-34s %8d\n", label, count)
	}
}

func figure10() *logic.Network {
	n := logic.New("fig10")
	x1 := n.AddInput("x1")
	x2 := n.AddInput("x2")
	x3 := n.AddInput("x3")
	x4 := n.AddInput("x4")
	x5 := n.AddInput("x5")
	p := n.AddAnd(x1, x2, x3)
	q := n.AddAnd(x3, x4)
	r := n.AddOr(p, q, x5)
	n.MarkOutput("P", p)
	n.MarkOutput("Q", q)
	n.MarkOutput("R", r)
	return n
}
