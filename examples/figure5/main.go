// Figure 5 walkthrough: reproduces the paper's worked example showing
// that two phase assignments of the same two functions differ by ~75% in
// total switching at input probability 0.9, with every intermediate
// number printed next to the paper's.
package main

import (
	"fmt"
	"log"

	"repro/internal/domino"
	"repro/internal/logic"
	"repro/internal/phase"
	"repro/internal/prob"
	"repro/internal/sim"
)

func main() {
	n := logic.New("fig5")
	a := n.AddInput("a")
	b := n.AddInput("b")
	c := n.AddInput("c")
	d := n.AddInput("d")
	x := n.AddOr(a, b)
	y := n.AddAnd(c, d)
	n.MarkOutput("f", n.AddOr(n.AddNot(x), n.AddNot(y))) // f = (a+b)' + (cd)'
	n.MarkOutput("g", n.AddOr(x, y))                     // g = (a+b) + (cd)

	probs := prob.Uniform(n, 0.9)
	fmt.Println("Figure 5 of the paper, input signal probabilities 0.9")
	fmt.Println()
	left := analyze(n, phase.Assignment{true, false}, probs)
	fmt.Printf("left realization  (f negative, g positive):\n")
	fmt.Printf("  domino block switching      %7.4f   (paper: 3.6)\n", left.domino)
	fmt.Printf("  input inverter switching    %7.4f   (paper: 0.0)\n", left.inInv)
	fmt.Printf("  output inverter switching   %7.4f   (paper: .8019)\n", left.outInv)
	fmt.Printf("  total                       %7.4f\n", left.total())
	fmt.Println()
	right := analyze(n, phase.Assignment{false, true}, probs)
	fmt.Printf("right realization (f positive, g negative):\n")
	fmt.Printf("  domino block switching      %7.4f   (paper: .40)\n", right.domino)
	fmt.Printf("  input inverter switching    %7.4f   (paper: .72)\n", right.inInv)
	fmt.Printf("  output inverter switching   %7.4f   (paper: .0019)\n", right.outInv)
	fmt.Printf("  total                       %7.4f\n", right.total())
	fmt.Println()
	fmt.Printf("reduction: %.1f%% fewer transitions (paper: 75%%)\n",
		100*(1-right.total()/left.total()))
	fmt.Println()

	// Cross-check the closed-form model with the Monte-Carlo simulator.
	for name, asg := range map[string]phase.Assignment{
		"left":  {true, false},
		"right": {false, true},
	} {
		res, err := phase.Apply(n, asg)
		if err != nil {
			log.Fatal(err)
		}
		blk, err := domino.Map(res, domino.DefaultLibrary())
		if err != nil {
			log.Fatal(err)
		}
		rep, err := sim.Run(blk, sim.Config{Vectors: 500000, Seed: 7, InputProbs: probs})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("simulated unweighted transitions (%s): domino %.4f per cycle\n",
			name, float64(rep.DominoTransitions)/float64(rep.Cycles))
	}
}

type breakdown struct {
	domino, inInv, outInv float64
}

func (b breakdown) total() float64 { return b.domino + b.inInv + b.outInv }

func analyze(n *logic.Network, asg phase.Assignment, probs []float64) breakdown {
	res, err := phase.Apply(n, asg)
	if err != nil {
		log.Fatal(err)
	}
	blockProbs, err := prob.Exact(res.Block, res.BlockInputProbs(probs), nil)
	if err != nil {
		log.Fatal(err)
	}
	var out breakdown
	for i := 0; i < res.Block.NumNodes(); i++ {
		k := res.Block.Kind(logic.NodeID(i))
		if k.IsGate() && k != logic.KindBuf {
			out.domino += prob.DominoSwitching(blockProbs[i])
		}
	}
	for _, bi := range res.Inputs {
		if bi.Inverted {
			out.inInv += prob.BoundaryInputInverterSwitching(probs[bi.InputPos])
		}
	}
	for i, bo := range res.Outputs {
		if bo.Negated {
			out.outInv += prob.BoundaryOutputInverterSwitching(blockProbs[res.Block.Outputs()[i].Driver])
		}
	}
	return out
}
