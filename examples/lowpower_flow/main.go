// lowpower_flow: runs the paper's Table 1 experiment end-to-end on one
// benchmark twin (frg1 by default), printing the MA/MP comparison and
// the MinPower heuristic's step trace — the committed K-guided pair
// flips of Section 4.1.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/domino"
	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/phase"
	"repro/internal/power"
	"repro/internal/prob"
)

func main() {
	name := flag.String("circuit", "frg1", "benchmark twin (frg1, apex7, x1, x3, ...)")
	flag.Parse()

	var circuit gen.NamedCircuit
	found := false
	for _, c := range gen.Table1Circuits() {
		if c.Name == *name {
			circuit, found = c, true
		}
	}
	if !found {
		log.Fatalf("unknown circuit %q", *name)
	}

	net := flow.Prepare(circuit.Net)
	probs := prob.Uniform(net, 0.5)
	lib := domino.DefaultLibrary()
	eval := power.Evaluator(lib, probs, power.Options{})

	fmt.Printf("%s: %d PIs, %d POs, %d gates after cleanup\n",
		circuit.Name, net.NumInputs(), net.NumOutputs(), net.GateCount())

	// Minimum-power heuristic with its trace.
	asg, _, pwr, trace, err := phase.MinPower(net, phase.PowerOptions{
		InputProbs: probs,
		Evaluate:   eval,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMinPower trace (%d pair trials):\n", len(trace))
	for _, s := range trace {
		mark := " "
		if s.Committed {
			mark = "*"
		}
		fmt.Printf(" %s pair (%d,%d) %s  K=%8.3f  power=%9.4f\n",
			mark, s.I, s.J, s.Combo, s.K, s.Power)
	}
	fmt.Printf("final assignment %s, estimated power %.4f\n", asg, pwr)

	// Full MA/MP rows as in Table 1.
	row, err := flow.RunCircuit(circuit, flow.Config{SimVectors: 8192})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTable 1 row for %s:\n", circuit.Name)
	fmt.Printf("  MA: %4d cells, measured power %8.3f\n", row.MA.Size, row.MA.SimPower)
	fmt.Printf("  MP: %4d cells, measured power %8.3f\n", row.MP.Size, row.MP.SimPower)
	fmt.Printf("  area penalty %.1f%% (paper %.1f%%), power saving %.1f%% (paper %.1f%%)\n",
		row.AreaPenaltyPct, row.PaperAreaPenaltyPct, row.PowerSavingPct, row.PaperPowerSavingPct)
}
