// lowpower_flow: runs the paper's Table 1 experiment end-to-end on one
// benchmark twin (frg1 by default), printing the MA/MP comparison and
// the MinPower heuristic's step trace — the committed K-guided pair
// flips of Section 4.1.
//
// With -strategy it instead searches the phase space with one of the
// pluggable strategies over the cone-table scorer and compares the
// result against the pairwise heuristic, e.g. on the 32-output twin
// where 2^32 exhaustive enumeration is infeasible:
//
//	go run ./examples/lowpower_flow -circuit wide32 -strategy anneal
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/domino"
	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/phase"
	"repro/internal/power"
	"repro/internal/prob"
)

func main() {
	name := flag.String("circuit", "frg1", "benchmark twin (frg1, apex7, x1, x3, wide24, wide32, wide48, ...)")
	strategy := flag.String("strategy", "", "run this search strategy (exhaustive, bb, anneal, greedy) over the cone table and compare it with the pairwise MinPower heuristic")
	seed := flag.Int64("seed", 1, "seed for the anneal/greedy strategies")
	flag.Parse()

	var circuit gen.NamedCircuit
	found := false
	for _, c := range append(gen.Table1Circuits(), gen.WideCircuits()...) {
		if c.Name == *name {
			circuit, found = c, true
		}
	}
	if !found {
		log.Fatalf("unknown circuit %q", *name)
	}

	net := flow.Prepare(circuit.Net)
	probs := prob.Uniform(net, 0.5)
	lib := domino.DefaultLibrary()

	fmt.Printf("%s: %d PIs, %d POs, %d gates after cleanup\n",
		circuit.Name, net.NumInputs(), net.NumOutputs(), net.GateCount())

	if *strategy != "" {
		strat, err := phase.ParseStrategy(*strategy)
		if err != nil {
			log.Fatal(err)
		}
		table, err := power.NewConeTable(net, lib, probs, power.Options{})
		if err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		mpAsg, _, mpScore, _, err := phase.MinPower(net, phase.PowerOptions{InputProbs: probs, Scorer: table})
		if err != nil {
			log.Fatal(err)
		}
		mpWall := time.Since(t0)
		t0 = time.Now()
		asg, _, score, err := phase.Search(net, phase.SearchOptions{
			Strategy: strat, Scorer: table, Seed: *seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\npairwise MinPower heuristic: %s  score %.6f  (%v)\n", mpAsg, mpScore, mpWall)
		fmt.Printf("%-10s strategy:         %s  score %.6f  (%v)\n", strat, asg, score, time.Since(t0))
		if score < mpScore {
			fmt.Printf("strategy improves on the heuristic by %.2f%%\n", 100*(mpScore-score)/mpScore)
		}
		return
	}

	eval := power.Evaluator(lib, probs, power.Options{})

	// Minimum-power heuristic with its trace.
	asg, _, pwr, trace, err := phase.MinPower(net, phase.PowerOptions{
		InputProbs: probs,
		Evaluate:   eval,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMinPower trace (%d pair trials):\n", len(trace))
	for _, s := range trace {
		mark := " "
		if s.Committed {
			mark = "*"
		}
		fmt.Printf(" %s pair (%d,%d) %s  K=%8.3f  power=%9.4f\n",
			mark, s.I, s.J, s.Combo, s.K, s.Power)
	}
	fmt.Printf("final assignment %s, estimated power %.4f\n", asg, pwr)

	// Full MA/MP rows as in Table 1.
	row, err := flow.RunCircuit(circuit, flow.Config{SimVectors: 8192})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTable 1 row for %s:\n", circuit.Name)
	fmt.Printf("  MA: %4d cells, measured power %8.3f\n", row.MA.Size, row.MA.SimPower)
	fmt.Printf("  MP: %4d cells, measured power %8.3f\n", row.MP.Size, row.MP.SimPower)
	fmt.Printf("  area penalty %.1f%% (paper %.1f%%), power saving %.1f%% (paper %.1f%%)\n",
		row.AreaPenaltyPct, row.PaperAreaPenaltyPct, row.PowerSavingPct, row.PaperPowerSavingPct)
}
