// Quickstart: build a small logic network, synthesize it as a low-power
// domino block with the paper's phase-assignment heuristic, and compare
// against the minimum-area baseline.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/logic"
)

func main() {
	// f = not(a+b) + not(c·d), g = (a+b) + (c·d): the running example of
	// the paper's Figures 3-5. Technology-independent synthesis leaves
	// inverters in the netlist; domino cannot implement them internally.
	n := logic.New("quickstart")
	a := n.AddInput("a")
	b := n.AddInput("b")
	c := n.AddInput("c")
	d := n.AddInput("d")
	x := n.AddOr(a, b)
	y := n.AddAnd(c, d)
	n.MarkOutput("f", n.AddOr(n.AddNot(x), n.AddNot(y)))
	n.MarkOutput("g", n.AddOr(x, y))

	// High input probabilities make the phase choice matter: domino
	// gates switch with probability equal to their signal probability.
	opts := core.Options{InputProb: 0.9, Vectors: 50000}
	ma, mp, err := core.Compare(n, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("minimum-area phase assignment (MA):")
	describe(ma)
	fmt.Println("\nminimum-power phase assignment (MP):")
	describe(mp)
	fmt.Printf("\npower saving: %.1f%% for %.1f%% more cells\n",
		100*(ma.MeasuredPower-mp.MeasuredPower)/ma.MeasuredPower,
		100*float64(mp.Cells-ma.Cells)/float64(ma.Cells))
}

func describe(r *core.Result) {
	fmt.Printf("  phases      %s  (+ = direct output, - = inverter at boundary)\n", r.Assignment)
	fmt.Printf("  cells       %d (area %.0f)\n", r.Cells, r.Area)
	fmt.Printf("  est power   %.4f\n", r.EstimatedPower)
	fmt.Printf("  sim power   %.4f\n", r.MeasuredPower)
	fmt.Printf("  crit delay  %.2f\n", r.CriticalDelay)
}
