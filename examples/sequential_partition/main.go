// sequential_partition: demonstrates the paper's Section 4.2.1 pipeline.
//
// Part 1 builds a sequential circuit whose s-graph is exactly the
// paper's Figure 9: flip-flops A, B, E with identical fanins and fanouts
// {C, D}, and C, D likewise symmetric over {A, B, E}. The classical MFVS
// reductions (Figure 8) cannot touch the graph and the greedy baseline
// cuts three flip-flops; the paper's symmetry-based supervertex
// transformation merges {A,B,E} (weight 3) and {C,D} (weight 2) and cuts
// only C and D — a smaller cut, hence a combinational block with fewer
// pseudo primary inputs (Figure 7's "ideal partitioning") and cheaper
// BDDs.
//
// Part 2 runs the same comparison on a generated duplication-heavy
// circuit.
package main

import (
	"fmt"
	"log"

	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/seq"
	"repro/internal/sgraph"
)

func main() {
	c := figure9Circuit()
	fmt.Println("Figure 9 sequential circuit: FFs A,B,E depend on {C,D}; C,D depend on {A,B,E}")

	g := c.SGraph()
	// The classical reductions of Figure 8 are stuck on this graph; the
	// symmetry transformation collapses it from 5 vertices to 2, which is
	// what makes exact search affordable on duplication-heavy blocks.
	probe := g.Clone()
	var stuck sgraph.Solution
	probe.Reduce(&stuck)
	fmt.Printf("after classical reductions: %d vertices (stuck)\n", probe.NumAlive())
	probe.Symmetrize()
	fmt.Printf("after symmetrization:       %d supervertices\n", probe.NumAlive())

	baseline := sgraph.MFVS(g, sgraph.Options{Symmetry: false, ExactLimit: 0})
	enhanced := sgraph.MFVS(g, sgraph.DefaultOptions())
	fmt.Printf("classical MFVS cut: %d flip-flops (%s)\n", baseline.Weight, names(c, baseline.Vertices))
	fmt.Printf("enhanced MFVS cut:  %d flip-flops (%s)   <- via supervertices ABE(3), CD(2)\n",
		enhanced.Weight, names(c, enhanced.Vertices))

	pb, err := c.Partition(baseline.Vertices)
	if err != nil {
		log.Fatal(err)
	}
	pe, err := c.Partition(enhanced.Vertices)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pseudo primary inputs: classical %d, enhanced %d\n", pb.PseudoInputCount(), pe.PseudoInputCount())
	fmt.Printf("block BDD variables:   classical %d, enhanced %d\n", pb.Block.NumInputs(), pe.Block.NumInputs())

	probs := make([]float64, c.Comb.NumInputs())
	for _, pos := range c.RealInputs {
		probs[pos] = 0.5
	}
	_, nodeProbs, err := c.SteadyStateProbs(seq.SteadyOptions{InputProbs: probs, Cut: enhanced.Vertices})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("steady-state probabilities of the cut flip-flops:")
	for _, ffIdx := range enhanced.Vertices {
		name := "ns_" + c.FFs[ffIdx].Name
		if oi := pe.Block.OutputByName(name); oi >= 0 {
			fmt.Printf("  %-4s %.4f\n", c.FFs[ffIdx].Name, nodeProbs[pe.Block.Outputs()[oi].Driver])
		}
	}

	fmt.Println("\nduplication-heavy generated circuit:")
	c2, err := gen.Sequential(gen.SeqParams{
		Name: "dup_heavy", Inputs: 10, FFs: 24, Gates: 120, Seed: 42, TwinProb: 0.6,
	})
	if err != nil {
		log.Fatal(err)
	}
	g2 := c2.SGraph()
	b2 := sgraph.MFVS(g2, sgraph.Options{Symmetry: false, ExactLimit: 0})
	e2 := sgraph.MFVS(g2, sgraph.DefaultOptions())
	fmt.Printf("  %d FFs: classical cut %d, enhanced cut %d\n", len(c2.FFs), b2.Weight, e2.Weight)
}

// figure9Circuit realizes the Figure 9 s-graph as a real circuit: five
// flip-flops whose next-state functions create exactly the edges of the
// figure.
func figure9Circuit() *seq.Circuit {
	n := logic.New("fig9seq")
	// FF outputs as pseudo-inputs.
	qA := n.AddInput("A")
	qB := n.AddInput("B")
	qC := n.AddInput("C")
	qD := n.AddInput("D")
	qE := n.AddInput("E")
	x := n.AddInput("x")
	// A, B, E each read C and D; C, D each read A, B and E.
	n.MarkOutput("nsA", n.AddAnd(qC, qD))
	n.MarkOutput("nsB", n.AddOr(qC, qD))
	n.MarkOutput("nsE", n.AddOr(n.AddAnd(qC, qD), x))
	n.MarkOutput("nsC", n.AddAnd(qA, qB, qE))
	n.MarkOutput("nsD", n.AddOr(qA, qB, qE))
	n.MarkOutput("z", n.AddOr(qA, qC))
	c, err := seq.New(n,
		[]int{0, 1, 2, 3, 4},
		[]int{0, 1, 3, 4, 2}, // nsA, nsB, nsC, nsD, nsE output indexes
		[]string{"A", "B", "C", "D", "E"})
	if err != nil {
		log.Fatal(err)
	}
	return c
}

func names(c *seq.Circuit, ffs []int) string {
	s := ""
	for i, f := range ffs {
		if i > 0 {
			s += ","
		}
		s += c.FFs[f].Name
	}
	return s
}
