// Root-level integration tests: the table-reproduction checks of
// EXPERIMENTS.md. These assert the *shape* of the paper's results — who
// wins, roughly by how much, and where the outliers sit — not absolute
// numbers, since the substrate is a simulator on synthetic benchmark
// twins (see DESIGN.md).
package repro_test

import (
	"testing"

	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/phase"
)

// TestTable1Reproduction runs the full untimed flow over all seven
// benchmark twins and checks the paper's qualitative claims.
func TestTable1Reproduction(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table 1 flow in -short mode")
	}
	rows, err := flow.RunTable1(flow.Config{SimVectors: 4096})
	if err != nil {
		t.Fatalf("RunTable1: %v", err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(rows))
	}
	byName := map[string]*flow.Row{}
	for _, r := range rows {
		byName[r.Name] = r
		// MA is the area optimum of the pair in the untimed flow.
		if r.MP.Size < r.MA.Size {
			t.Errorf("%s: MP size %d beat MA size %d", r.Name, r.MP.Size, r.MA.Size)
		}
		// Sanity: both syntheses measured.
		if r.MA.SimPower <= 0 || r.MP.SimPower <= 0 {
			t.Errorf("%s: missing measurements", r.Name)
		}
	}
	areaPen, pwrSav := flow.Averages(rows)
	// Paper: average 18.0% saving at 11.8% area penalty. Shape check:
	// meaningful average savings at a modest area cost.
	if pwrSav < 5 {
		t.Errorf("average power saving %.1f%%, want >= 5%% (paper: 18.0%%)", pwrSav)
	}
	if areaPen < 0 || areaPen > 30 {
		t.Errorf("average area penalty %.1f%%, want 0..30%% (paper: 11.8%%)", areaPen)
	}
	// frg1: the paper's standout saver despite only 8 possible
	// assignments.
	if frg1 := byName["frg1"]; frg1.PowerSavingPct < 25 {
		t.Errorf("frg1 saving %.1f%%, want >= 25%% (paper: 34.1%%)", frg1.PowerSavingPct)
	}
	// The savings distribution is heterogeneous: at least one row near
	// zero or negative (paper: Industry 2 at -2.8%).
	low := false
	for _, r := range rows {
		if r.PowerSavingPct < 5 {
			low = true
		}
	}
	if !low {
		t.Error("expected at least one near-zero/negative row (paper: Industry 2)")
	}
}

// TestTable2Reproduction runs the timed flow over the four public twins.
func TestTable2Reproduction(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table 2 flow in -short mode")
	}
	rows, err := flow.RunTable2(flow.Config{SimVectors: 4096})
	if err != nil {
		t.Fatalf("RunTable2: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	_, pwrSav := flow.Averages(rows)
	// Paper: savings survive timing closure (35.3% average). Shape: the
	// average stays positive.
	if pwrSav <= 0 {
		t.Errorf("timed average power saving %.1f%%, want > 0 (paper: 35.3%%)", pwrSav)
	}
	for _, r := range rows {
		if !r.MA.MetTiming {
			t.Errorf("%s: MA missed its own slack-relaxed target", r.Name)
		}
		if r.MA.Critical <= 0 || r.MP.Critical <= 0 {
			t.Errorf("%s: missing timing analysis", r.Name)
		}
	}
}

// TestFlowParadigm is the Figure 6 integration test: the loop must
// produce functionally correct syntheses whose committed steps strictly
// reduce estimated power.
func TestFlowParadigm(t *testing.T) {
	c := gen.Frg1()
	net := flow.Prepare(c.Net)
	row, err := flow.RunCircuit(c, flow.Config{SimVectors: 2048})
	if err != nil {
		t.Fatalf("RunCircuit: %v", err)
	}
	for _, s := range []*flow.Synthesis{&row.MA, &row.MP} {
		res, err := phase.Apply(net, s.Assignment)
		if err != nil {
			t.Fatal(err)
		}
		eq, err := logic.EquivalentSampled(net, res.Reconstructed(), 4096, 1)
		if err != nil || !eq {
			t.Errorf("assignment %s broke functionality: %v %v", s.Assignment, eq, err)
		}
	}
	// Estimates and measurements must agree to simulator accuracy for the
	// exact engine (frg1 twin has 31 inputs, so Auto uses approximate;
	// allow generous tolerance).
	for _, s := range []*flow.Synthesis{&row.MA, &row.MP} {
		if s.SimPower <= 0 || s.EstPower <= 0 {
			t.Error("missing power numbers")
		}
		rel := (s.SimPower - s.EstPower) / s.SimPower
		if rel < 0 {
			rel = -rel
		}
		if rel > 0.5 {
			t.Errorf("estimate %v vs sim %v diverge by %.0f%%", s.EstPower, s.SimPower, 100*rel)
		}
	}
}
