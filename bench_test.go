// Package repro's root benchmarks regenerate every table and figure of
// the paper (see EXPERIMENTS.md for the index and paper-vs-measured
// numbers). Custom metrics attach the headline quantities to the bench
// output: %sav is the measured power saving of MP over MA, %areapen the
// area penalty — the two columns of Tables 1 and 2.
//
// Run a single experiment with e.g.
//
//	go test -bench 'BenchmarkTable1Row/frg1' -benchtime 1x
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/bdd"
	"repro/internal/domino"
	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/order"
	"repro/internal/phase"
	"repro/internal/power"
	"repro/internal/prob"
	"repro/internal/sgraph"
	"repro/internal/sim"
	"repro/internal/timing"
)

// --- Table 1 ---------------------------------------------------------

func BenchmarkTable1Row(b *testing.B) {
	b.ReportAllocs()
	for _, c := range gen.Table1Circuits() {
		c := c
		b.Run(c.Name, func(b *testing.B) {
			b.ReportAllocs()
			var row *flow.Row
			for i := 0; i < b.N; i++ {
				var err error
				row, err = flow.RunCircuit(c, flow.Config{SimVectors: 4096})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(row.PowerSavingPct, "%sav")
			b.ReportMetric(row.AreaPenaltyPct, "%areapen")
			b.ReportMetric(c.PaperPwrSav, "paper%sav")
		})
	}
}

// --- Table 2 ---------------------------------------------------------

func BenchmarkTable2Row(b *testing.B) {
	b.ReportAllocs()
	for _, c := range gen.Table2Circuits() {
		c := c
		b.Run(c.Name, func(b *testing.B) {
			b.ReportAllocs()
			var row *flow.Row
			for i := 0; i < b.N; i++ {
				var err error
				row, err = flow.RunCircuitTimed(c, flow.Config{SimVectors: 4096})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(row.PowerSavingPct, "%sav")
			b.ReportMetric(row.AreaPenaltyPct, "%areapen")
			b.ReportMetric(c.PaperPwrSav, "paper%sav")
		})
	}
}

// --- Figure 2: switching vs signal probability ------------------------

func BenchmarkFigure2Curves(b *testing.B) {
	b.ReportAllocs()
	var crossover float64
	for i := 0; i < b.N; i++ {
		dom, sta := prob.Figure2Curves(1000)
		// The curves cross at p = 0.5; beyond it domino switches more.
		for j := range dom {
			if dom[j].S > sta[j].S {
				crossover = dom[j].P
				break
			}
		}
	}
	b.ReportMetric(crossover, "crossover_p")
}

// --- Figures 3/4: inverter removal and trapped-inverter duplication ---

func figure5Network() *logic.Network {
	n := logic.New("fig5")
	a := n.AddInput("a")
	bb := n.AddInput("b")
	c := n.AddInput("c")
	d := n.AddInput("d")
	x := n.AddOr(a, bb)
	y := n.AddAnd(c, d)
	n.MarkOutput("f", n.AddOr(n.AddNot(x), n.AddNot(y)))
	n.MarkOutput("g", n.AddOr(x, y))
	return n
}

func BenchmarkFigure3InverterRemoval(b *testing.B) {
	b.ReportAllocs()
	n := figure5Network()
	var inverterFree bool
	for i := 0; i < b.N; i++ {
		r, err := phase.Apply(n, phase.Assignment{true, false})
		if err != nil {
			b.Fatal(err)
		}
		inverterFree = !r.Block.HasInverters()
	}
	if !inverterFree {
		b.Fatal("block not inverter-free")
	}
}

func BenchmarkFigure4Duplication(b *testing.B) {
	b.ReportAllocs()
	// Conflicting phases on shared logic: measure the duplication factor.
	n := gen.Generate(gen.Params{Name: "dup", Inputs: 16, Outputs: 8, Gates: 120, Seed: 5, OrProb: 0.6})
	net := flow.Prepare(n)
	agree := phase.AllPositive(net.NumOutputs())
	conflict := phase.AllPositive(net.NumOutputs())
	for i := range conflict {
		conflict[i] = i%2 == 1
	}
	var factor float64
	for i := 0; i < b.N; i++ {
		ra, err := phase.Apply(net, agree)
		if err != nil {
			b.Fatal(err)
		}
		rc, err := phase.Apply(net, conflict)
		if err != nil {
			b.Fatal(err)
		}
		factor = float64(rc.Block.GateCount()) / float64(ra.Block.GateCount())
	}
	b.ReportMetric(factor, "duplication_x")
}

// --- Figure 5: the 75% switching reduction -----------------------------

func BenchmarkFigure5(b *testing.B) {
	b.ReportAllocs()
	n := figure5Network()
	probs := prob.Uniform(n, 0.9)
	lib := domino.DefaultLibrary()
	var reduction float64
	for i := 0; i < b.N; i++ {
		totals := [2]float64{}
		for k, asg := range []phase.Assignment{{true, false}, {false, true}} {
			r, err := phase.Apply(n, asg)
			if err != nil {
				b.Fatal(err)
			}
			blk, err := domino.Map(r, lib)
			if err != nil {
				b.Fatal(err)
			}
			s, err := power.SwitchingOnly(blk, probs, power.Options{Method: power.Exact})
			if err != nil {
				b.Fatal(err)
			}
			totals[k] = s
		}
		reduction = 100 * (1 - totals[1]/totals[0])
	}
	b.ReportMetric(reduction, "%fewer_transitions") // paper: 75
}

// --- Figure 6: the overall paradigm loop -------------------------------

func BenchmarkFigure6ParadigmLoop(b *testing.B) {
	b.ReportAllocs()
	// One full iteration of the Figure 6 loop on a mid-size circuit:
	// candidate generation (K ranking), synthesis, power measurement.
	c := gen.Apex7()
	net := flow.Prepare(c.Net)
	probs := prob.Uniform(net, 0.5)
	lib := domino.DefaultLibrary()
	eval := power.Evaluator(lib, probs, power.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, _, err := phase.MinPower(net, phase.PowerOptions{
			InputProbs: probs, Evaluate: eval,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 7: partitioning quality ------------------------------------

func BenchmarkFigure7Partition(b *testing.B) {
	b.ReportAllocs()
	c, err := gen.Sequential(gen.SeqParams{Name: "part", Inputs: 10, FFs: 20, Gates: 100, Seed: 21, TwinProb: 0.5})
	if err != nil {
		b.Fatal(err)
	}
	var pseudo int
	for i := 0; i < b.N; i++ {
		cut := c.Cut(sgraph.DefaultOptions())
		p, err := c.Partition(cut)
		if err != nil {
			b.Fatal(err)
		}
		pseudo = p.PseudoInputCount()
	}
	b.ReportMetric(float64(pseudo), "pseudo_inputs")
}

// --- Figures 8/9: MFVS reductions and the symmetry transformation ------

func twinHeavyGraph() *sgraph.Graph {
	c, err := gen.Sequential(gen.SeqParams{Name: "tw", Inputs: 8, FFs: 40, Gates: 160, Seed: 33, TwinProb: 0.7})
	if err != nil {
		panic(err)
	}
	return c.SGraph()
}

func BenchmarkFigure9MFVSEnhanced(b *testing.B) {
	b.ReportAllocs()
	g := twinHeavyGraph()
	var w int
	for i := 0; i < b.N; i++ {
		w = sgraph.MFVS(g, sgraph.DefaultOptions()).Weight
	}
	b.ReportMetric(float64(w), "cut_ffs")
}

func BenchmarkFigure9MFVSBaseline(b *testing.B) {
	b.ReportAllocs()
	g := twinHeavyGraph()
	var w int
	for i := 0; i < b.N; i++ {
		w = sgraph.MFVS(g, sgraph.Options{Symmetry: false, ExactLimit: 16}).Weight
	}
	b.ReportMetric(float64(w), "cut_ffs")
}

// --- Figure 10: BDD variable ordering -----------------------------------

func BenchmarkFigure10Ordering(b *testing.B) {
	b.ReportAllocs()
	n := logic.New("fig10")
	x1 := n.AddInput("x1")
	x2 := n.AddInput("x2")
	x3 := n.AddInput("x3")
	x4 := n.AddInput("x4")
	x5 := n.AddInput("x5")
	p := n.AddAnd(x1, x2, x3)
	q := n.AddAnd(x3, x4)
	r := n.AddOr(p, q, x5)
	n.MarkOutput("P", p)
	n.MarkOutput("Q", q)
	n.MarkOutput("R", r)
	cases := []struct {
		name string
		ord  []int
	}{
		{"reverse_topological", order.ReverseTopological(n)},
		{"topological", order.Topological(n)},
		{"disturbed", []int{4, 0, 3, 2, 1}},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			var count int
			for i := 0; i < b.N; i++ {
				nb, err := bdd.BuildNetwork(n, c.ord)
				if err != nil {
					b.Fatal(err)
				}
				count = nb.Manager.NodeCount(nb.NodeRefs[p], nb.NodeRefs[q], nb.NodeRefs[r])
			}
			b.ReportMetric(float64(count), "bdd_nodes")
		})
	}
}

// --- Ablations ----------------------------------------------------------

// BenchmarkAblationOrdering compares exact power estimation cost under
// the paper's variable order versus the natural order on a benchmark
// twin — the payoff of Section 4.2.2.
func BenchmarkAblationOrdering(b *testing.B) {
	b.ReportAllocs()
	net := flow.Prepare(gen.Generate(gen.Params{Name: "abl", Inputs: 20, Outputs: 8, Gates: 260, Seed: 77, OrProb: 0.6}))
	res, err := phase.Apply(net, phase.AllPositive(net.NumOutputs()))
	if err != nil {
		b.Fatal(err)
	}
	blk, err := domino.Map(res, domino.DefaultLibrary())
	if err != nil {
		b.Fatal(err)
	}
	probs := prob.Uniform(net, 0.5)
	// Options.Order ranges over the *original* primary-input variables.
	cases := []struct {
		name string
		ord  []int
	}{
		{"reverse_topological", nil}, // Estimate's default
		{"natural", order.Natural(net)},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := power.Estimate(blk, probs, power.Options{Method: power.Exact, Order: c.ord}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationProbabilityEngine compares the exact BDD engine with
// the approximate propagation inside the MinPower loop.
func BenchmarkAblationProbabilityEngine(b *testing.B) {
	b.ReportAllocs()
	net := flow.Prepare(gen.Generate(gen.Params{Name: "abl2", Inputs: 16, Outputs: 6, Gates: 160, Seed: 78, OrProb: 0.65}))
	probs := prob.Uniform(net, 0.5)
	lib := domino.DefaultLibrary()
	for _, m := range []struct {
		name   string
		method power.Method
	}{{"exact", power.Exact}, {"approximate", power.Approximate}, {"limited_depth", power.LimitedDepth}} {
		m := m
		b.Run(m.name, func(b *testing.B) {
			b.ReportAllocs()
			var est float64
			for i := 0; i < b.N; i++ {
				_, _, p, _, err := phase.MinPower(net, phase.PowerOptions{
					InputProbs: probs,
					Evaluate:   power.Evaluator(lib, probs, power.Options{Method: m.method}),
				})
				if err != nil {
					b.Fatal(err)
				}
				est = p
			}
			b.ReportMetric(est, "est_power")
		})
	}
}

// BenchmarkAblationPenalty explores the paper's future-work direction
// (timing-integrated phase assignment) through the P_i knob: the MP
// objective with and without the AND-stack penalty, reporting the
// AND-cell count of the chosen synthesis and its resize effort.
func BenchmarkAblationPenalty(b *testing.B) {
	b.ReportAllocs()
	c := gen.NamedCircuit{
		Name: "orheavy",
		Net:  gen.Generate(gen.Params{Name: "orheavy", Inputs: 14, Outputs: 5, Gates: 90, Seed: 0x7A12, OrProb: 0.8}),
	}
	for _, pen := range []struct {
		name string
		val  float64
	}{{"penalty_0", 0}, {"penalty_0.4", 0.4}} {
		pen := pen
		b.Run(pen.name, func(b *testing.B) {
			b.ReportAllocs()
			var andCells, steps float64
			for i := 0; i < b.N; i++ {
				if pen.val == 0 {
					row, err := flow.RunCircuitTimed(c, flow.Config{SimVectors: 1024})
					if err != nil {
						b.Fatal(err)
					}
					andCells = countAnd(row)
					steps = float64(row.MP.ResizeSteps)
				} else {
					res, err := flow.RunCircuitTimingAware(c, flow.Config{SimVectors: 1024}, pen.val)
					if err != nil {
						b.Fatal(err)
					}
					andCells = countAnd(res.Penalized)
					steps = float64(res.PenalizedResizeSteps)
				}
			}
			b.ReportMetric(andCells, "mp_and_cells")
			b.ReportMetric(steps, "mp_resize_steps")
		})
	}
}

func countAnd(row *flow.Row) float64 {
	n := 0
	for i := range row.MP.Block.Cells {
		if row.MP.Block.Cells[i].Kind == logic.KindAnd {
			n++
		}
	}
	return float64(n)
}

// BenchmarkSequentialFlow runs the full Section 4.2 sequential pipeline.
func BenchmarkSequentialFlow(b *testing.B) {
	b.ReportAllocs()
	c, err := gen.Sequential(gen.SeqParams{
		Name: "seqbench", Inputs: 10, FFs: 14, Gates: 80, Seed: 41, TwinProb: 0.5,
	})
	if err != nil {
		b.Fatal(err)
	}
	var sav float64
	for i := 0; i < b.N; i++ {
		row, err := flow.RunSequential(c, flow.Config{SimVectors: 1024})
		if err != nil {
			b.Fatal(err)
		}
		sav = row.PowerSavingPct
	}
	b.ReportMetric(sav, "%sav")
}

// BenchmarkSimulatorThroughput measures the PowerMill stand-in on a
// Table 1-scale block (vectors/sec scale check).
func BenchmarkSimulatorThroughput(b *testing.B) {
	b.ReportAllocs()
	c := gen.X1()
	net := flow.Prepare(c.Net)
	res, err := phase.Apply(net, phase.AllPositive(net.NumOutputs()))
	if err != nil {
		b.Fatal(err)
	}
	blk, err := domino.Map(res, domino.DefaultLibrary())
	if err != nil {
		b.Fatal(err)
	}
	probs := prob.Uniform(net, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(blk, sim.Config{Vectors: 4096, Seed: 1, InputProbs: probs}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Parallel engine: sequential vs sharded/pooled paths ---------------

// parallelBenchNet is a 10-output circuit whose 2^10 phase space makes
// the exhaustive search heavy enough to shard meaningfully.
func parallelBenchNet() *logic.Network {
	return flow.Prepare(gen.Generate(gen.Params{
		Name: "parbench", Inputs: 16, Outputs: 10, Gates: 110, Seed: 0x9A11, OrProb: 0.65,
	}))
}

// BenchmarkExhaustiveSearch compares the sequential exhaustive phase
// search against the sharded pool at several worker counts on a
// 10-output circuit. On multi-core hardware the 4-worker case is the
// ISSUE's ≥2x wall-clock gate; results are bit-identical throughout.
func BenchmarkExhaustiveSearch(b *testing.B) {
	b.ReportAllocs()
	net := parallelBenchNet()
	probs := prob.Uniform(net, 0.5)
	eval := power.Evaluator(domino.DefaultLibrary(), probs, power.Options{})
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			var score float64
			for i := 0; i < b.N; i++ {
				_, _, s, err := phase.ExhaustiveParallel(net, eval, workers)
				if err != nil {
					b.Fatal(err)
				}
				score = s
			}
			b.ReportMetric(score, "best_power")
		})
	}
}

// BenchmarkConeTableExhaustive runs the same search through the
// cone-table scorer (ISSUE 3): one table build amortized over the full
// 2^k scored scan, Apply only on the winner. Compare best_power and
// wall-clock against BenchmarkExhaustiveSearch — the winner matches and
// the per-mask cost drops from a full synthesis to a signature-gated
// constant fold. The build subbenchmark isolates the one-time cost.
func BenchmarkConeTableExhaustive(b *testing.B) {
	net := parallelBenchNet()
	probs := prob.Uniform(net, 0.5)
	lib := domino.DefaultLibrary()
	b.Run("build", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := power.NewConeTable(net, lib, probs, power.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	table, err := power.NewConeTable(net, lib, probs, power.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		workers := workers
		b.Run(fmt.Sprintf("search/workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			var score float64
			for i := 0; i < b.N; i++ {
				_, _, s, err := phase.ExhaustiveScored(net, table, workers)
				if err != nil {
					b.Fatal(err)
				}
				score = s
			}
			b.ReportMetric(score, "best_power")
		})
	}
}

// BenchmarkSearchStrategies runs the pluggable strategies (ISSUE 4)
// over the cone table's incremental score state on the same 10-output
// circuit: gray-code exhaustive (one O(Δ) Flip per candidate — compare
// against BenchmarkConeTableExhaustive's full-rescore scan), exact
// branch-and-bound (bit-identical winner, prunes the 2^k space), and
// the seeded heuristics. best_power must agree across the exact rows.
func BenchmarkSearchStrategies(b *testing.B) {
	net := parallelBenchNet()
	probs := prob.Uniform(net, 0.5)
	table, err := power.NewConeTable(net, domino.DefaultLibrary(), probs, power.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for _, strat := range []phase.SearchStrategy{
		phase.StrategyExhaustive, phase.StrategyBranchBound,
		phase.StrategyAnneal, phase.StrategyGreedy,
	} {
		strat := strat
		b.Run(strat.String(), func(b *testing.B) {
			b.ReportAllocs()
			var score float64
			for i := 0; i < b.N; i++ {
				_, _, s, err := phase.Search(net, phase.SearchOptions{
					Strategy: strat, Scorer: table, Workers: 1, Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				score = s
			}
			b.ReportMetric(score, "best_power")
		})
	}
}

// BenchmarkShardedSim compares the single-stream simulator against the
// sharded engine at a fixed shard count and growing worker pools.
func BenchmarkShardedSim(b *testing.B) {
	b.ReportAllocs()
	net := parallelBenchNet()
	res, err := phase.Apply(net, phase.AllPositive(net.NumOutputs()))
	if err != nil {
		b.Fatal(err)
	}
	blk, err := domino.Map(res, domino.DefaultLibrary())
	if err != nil {
		b.Fatal(err)
	}
	probs := prob.Uniform(net, 0.5)
	cases := []struct {
		name            string
		shards, workers int
	}{
		{"sequential", 1, 1},
		{"shards=8/workers=1", 8, 1},
		{"shards=8/workers=4", 8, 4},
		{"shards=8/workers=8", 8, 8},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(blk, sim.Config{
					Vectors: 16384, Seed: 1, InputProbs: probs,
					Shards: c.shards, Workers: c.workers,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Kernel benchmarks: bit-parallel sim and map-free BDD engine -------

// simKernelBlock maps the x1 benchsuite twin for the kernel comparison.
func simKernelBlock(b *testing.B) (*domino.Block, []float64) {
	b.Helper()
	c := gen.X1()
	net := flow.Prepare(c.Net)
	res, err := phase.Apply(net, phase.AllPositive(net.NumOutputs()))
	if err != nil {
		b.Fatal(err)
	}
	blk, err := domino.Map(res, domino.DefaultLibrary())
	if err != nil {
		b.Fatal(err)
	}
	return blk, prob.Uniform(net, 0.5)
}

// BenchmarkSimWideVsScalar compares the bit-parallel kernels against
// the scalar reference oracle on a benchsuite twin. All three produce
// byte-identical Reports (TestWideMatchesScalarKernel,
// TestBlockedMatchesScalarAndWideKernels); the wide/scalar ns/op ratio
// is the ISSUE 2 throughput gate and the blocked/wide ratio previews
// the ISSUE 7 saturation gate.
func BenchmarkSimWideVsScalar(b *testing.B) {
	b.ReportAllocs()
	blk, probs := simKernelBlock(b)
	for _, k := range []struct {
		name   string
		kernel sim.Kernel
	}{{"scalar", sim.KernelScalar}, {"wide", sim.KernelWide}, {"blocked", sim.KernelBlocked}} {
		k := k
		b.Run(k.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(blk, sim.Config{
					Vectors: 4096, Seed: 1, InputProbs: probs, Kernel: k.kernel,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBDDBuild measures the shared-forest construction behind
// power.Estimate on a benchsuite-scale network under the paper's
// reverse-topological order — the workload the open-addressed unique
// table and direct-mapped memo caches are built for.
func BenchmarkBDDBuild(b *testing.B) {
	b.ReportAllocs()
	net := flow.Prepare(gen.Generate(gen.Params{
		Name: "bddbuild", Inputs: 20, Outputs: 8, Gates: 260, Seed: 77, OrProb: 0.6,
	}))
	ord := order.ReverseTopological(net)
	b.ResetTimer()
	var nodes int
	for i := 0; i < b.N; i++ {
		nb, err := bdd.BuildNetwork(net, ord)
		if err != nil {
			b.Fatal(err)
		}
		nodes = nb.Manager.NodeCount(nb.OutputRefs(net)...)
	}
	b.ReportMetric(float64(nodes), "bdd_nodes")
}

// BenchmarkResize measures the Table 2 resizing pass.
func BenchmarkResize(b *testing.B) {
	b.ReportAllocs()
	c := gen.Apex7()
	net := flow.Prepare(c.Net)
	res, err := phase.Apply(net, phase.AllPositive(net.NumOutputs()))
	if err != nil {
		b.Fatal(err)
	}
	p := timing.DefaultParams()
	for i := 0; i < b.N; i++ {
		blk, err := domino.Map(res, domino.DefaultLibrary())
		if err != nil {
			b.Fatal(err)
		}
		timing.Tighten(blk, p)
	}
}
