# CI and humans invoke the same targets (see .github/workflows/ci.yml).

GO ?= go

.PHONY: all build test race bench kernelbench conebench lint fmt benchsuite

all: lint build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short smoke pass over every benchmark: one iteration each, no tests.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Kernel benchmark smoke: scalar vs bit-parallel sim and the BDD engine,
# persisted as BENCH_2.json (uploaded as a CI artifact).
kernelbench:
	$(GO) run ./cmd/benchsuite -bench-out BENCH_2.json

# Cone-table benchmark smoke: the cached-cone exhaustive phase search vs
# the naive per-mask Apply+Estimate path on the synth12 twin, persisted
# as BENCH_3.json (uploaded as a CI artifact). Exits non-zero if the two
# scorers disagree, the winner varies with worker count, or the speedup
# falls below 100x.
conebench:
	$(GO) run ./cmd/benchsuite -cone-bench-out BENCH_3.json

lint:
	$(GO) vet ./...
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

fmt:
	gofmt -w .

# Full batch sweep; writes results.md / results.json under ./results.
benchsuite:
	$(GO) run ./cmd/benchsuite -out results
