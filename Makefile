# CI and humans invoke the same targets (see .github/workflows/ci.yml).

GO ?= go

.PHONY: all build test race bench kernelbench conebench searchbench satbench reorderbench corpussmoke servesmoke faultsmoke loadtest lint lintgate staticcheck staticcheck-install docgate fmt benchsuite

all: lint build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short smoke pass over every benchmark: one iteration each, no tests.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Kernel benchmark smoke: scalar vs bit-parallel sim and the BDD engine,
# persisted as BENCH_2.json (uploaded as a CI artifact).
kernelbench:
	$(GO) run ./cmd/benchsuite -bench-out BENCH_2.json

# Cone-table benchmark smoke: the cached-cone exhaustive phase search vs
# the naive per-mask Apply+Estimate path on the synth12 twin, persisted
# as BENCH_3.json (uploaded as a CI artifact). Exits non-zero if the two
# scorers disagree, the winner varies with worker count, or the speedup
# falls below 100x.
conebench:
	$(GO) run ./cmd/benchsuite -cone-bench-out BENCH_3.json

# Search-strategy benchmark smoke: per-candidate full rescore vs
# incremental gray-code Flip on the synth12 twin plus the
# beyond-exhaustive strategies on the wide twins, persisted as
# BENCH_4.json (uploaded as a CI artifact). Exits non-zero if the
# gray-code or branch-and-bound winner disagrees with the reference
# scan at any worker count, if the per-candidate flip speedup falls
# below 10x, if a heuristic beats the exact branch-and-bound at k=24,
# or if annealing fails to strictly beat the MinPower heuristic at k=32.
searchbench:
	$(GO) run ./cmd/benchsuite -search-bench-out BENCH_4.json

# Saturation benchmark: the wide vs blocked simulation kernels across
# block sizes and worker counts on the x1/wide32 twins plus a
# low-activity twin, persisted as BENCH_7.json (uploaded as a CI
# artifact). Exits non-zero if the blocked kernel's Reports diverge
# from the scalar oracle anywhere in the (Seed, Shards, Workers)
# matrix, if the blocked kernel falls below 3x the wide kernel's
# throughput on x1, or if activity gating skips no more than half the
# gate evaluations on the low-activity twin.
satbench:
	$(GO) run ./cmd/benchsuite -satbench-out BENCH_7.json

# BDD reordering benchmark: the Table-1 corpus plus the x4 twin under
# the default exact-engine node budget with in-place dynamic reordering
# (Rudell sifting), persisted as BENCH_9.json (uploaded as a CI
# artifact). Exits non-zero if any corpus row differs across worker
# counts {1,2,8}, if the largest circuit completing on the exact engine
# does not beat x3's 235 PIs, if fewer than two of BENCH_8's degraded
# Table-1 circuits are rescued to exact-sifted on the frontier ladder,
# or if a resubmission of the corpus re-enters the flow instead of
# hitting the content-addressed cache.
reorderbench:
	$(GO) run ./cmd/benchsuite -reorder-bench-out BENCH_9.json

# Corpus smoke: emit the small public twins as BLIF, stream the
# directory through the concurrent corpus engine (untimed and timed
# flows), and gate on row agreement with the direct in-memory gen-twin
# flow (-check-twins): sizes must match exactly, measured/estimated
# power to float-noise tolerance. Exits non-zero on any disagreement,
# parse failure, or error row.
corpussmoke:
	rm -rf corpus-smoke
	$(GO) run ./cmd/genbench -dir corpus-smoke -only apex7,frg1,x1
	$(GO) run ./cmd/dominoflow -dir corpus-smoke -vectors 512 -workers 4 -check-twins -jsonl corpus-smoke/rows.jsonl
	$(GO) run ./cmd/dominoflow -dir corpus-smoke -table 2 -vectors 512 -workers 2 -check-twins

# Service smoke: emit the small public twins as BLIF and run the dominod
# end-to-end harness over real HTTP against them. Gates on the streamed
# JSONL rows byte-matching a direct flow.RunCorpus run (wall-clock
# excepted), a repeat submission being served entirely from the
# content-addressed cache (the flow is not re-entered), one 429 +
# Retry-After under a full queue, and one graceful drain finishing its
# in-flight job. Writes the HTTP-streamed rows to serve-smoke/rows.jsonl
# (uploaded as a CI artifact).
servesmoke:
	rm -rf serve-smoke
	$(GO) run ./cmd/genbench -dir serve-smoke -only apex7,frg1,x1
	$(GO) run ./cmd/dominod -smoke serve-smoke -smoke-out serve-smoke/rows.jsonl

# Chaos smoke: dominod with fault injection on, driven under the race
# detector through hostile traffic — configure-time panics, circuits
# pinned in the sim loop until the per-circuit timeout cancels them,
# exact-BDD jobs under an impossible node budget, and client DELETE
# cancellations — then the Table-1 twin corpus under a real BDD node
# budget. Gates on panics isolating into error rows, pinned circuits
# timing out cooperatively, blown budgets degrading (never erroring),
# both drains finishing clean, and the goroutine count returning to
# baseline. Writes BENCH_8.json (largest circuit completed + rows/sec
# with budgets on; uploaded as a CI artifact).
faultsmoke:
	$(GO) run -race ./cmd/dominod -faultsmoke -faultsmoke-out BENCH_8.json

# Service load test: sustained jobs/min over real HTTP against an
# in-process dominod, persisted as BENCH_6.json (uploaded as a CI
# artifact). Exits non-zero if the cached path (identical submissions
# answered from the content-addressed cache) falls below 1000 jobs/min;
# also records a cold-path figure (distinct configs, every job runs the
# flow).
loadtest:
	$(GO) run ./cmd/dominod -loadtest -loadtest-out BENCH_6.json

# Static-analysis ladder, cheapest first: gofmt (formatting), docgate
# (package docs), go vet (stdlib checks), dominolint (repo contracts:
# determinism, cache keys, budget polling — see internal/lint), then
# staticcheck when installed. dominolint findings are persisted to
# dominolint-findings.txt (uploaded as a CI artifact, empty when clean).
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	@$(MAKE) --no-print-directory docgate
	$(GO) vet ./...
	$(GO) run ./cmd/dominolint -out dominolint-findings.txt ./...
	@$(MAKE) --no-print-directory staticcheck

# staticcheck rides along when present; the version is pinned here so
# local installs and CI agree. The binary cannot live in go.mod (the
# build environment has no module network access), so the gate degrades
# to a hint instead of a hard failure when the tool is missing.
STATICCHECK_VERSION ?= 2025.1.1

staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./... ; \
	else \
		echo "staticcheck $(STATICCHECK_VERSION) not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION))"; \
	fi

staticcheck-install:
	$(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)

# Proves the dominolint gate is live: the seeded fixture carries
# deliberate walltime and detrange violations, so dominolint must exit 1
# (findings) on it — exit 0 means the gate is dead, exit 2 means the
# checker itself broke.
lintgate:
	@$(GO) run ./cmd/dominolint -dir internal/lint/testdata/src/seeded/flow; \
	status=$$?; \
	if [ $$status -ne 1 ]; then \
		echo "lintgate: expected exit 1 (findings) on the seeded fixture, got $$status"; exit 1; \
	fi; \
	echo "lintgate: seeded violations detected, the gate is live"

# Every package must carry a doc comment ("Package x ..." for libraries,
# "Command x ..." for binaries) so the godoc surface stays complete.
docgate:
	@missing=0; \
	for d in internal/*/ cmd/*/; do \
		if ! grep -qE '^// (Package|Command) ' $$d*.go 2>/dev/null; then \
			echo "docgate: $$d has no package doc comment"; missing=1; \
		fi; \
	done; \
	[ $$missing -eq 0 ] || exit 1

fmt:
	gofmt -w .

# Full batch sweep; writes results.md / results.json under ./results.
benchsuite:
	$(GO) run ./cmd/benchsuite -out results
