# CI and humans invoke the same targets (see .github/workflows/ci.yml).

GO ?= go

.PHONY: all build test race bench kernelbench conebench searchbench corpussmoke lint fmt benchsuite

all: lint build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short smoke pass over every benchmark: one iteration each, no tests.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Kernel benchmark smoke: scalar vs bit-parallel sim and the BDD engine,
# persisted as BENCH_2.json (uploaded as a CI artifact).
kernelbench:
	$(GO) run ./cmd/benchsuite -bench-out BENCH_2.json

# Cone-table benchmark smoke: the cached-cone exhaustive phase search vs
# the naive per-mask Apply+Estimate path on the synth12 twin, persisted
# as BENCH_3.json (uploaded as a CI artifact). Exits non-zero if the two
# scorers disagree, the winner varies with worker count, or the speedup
# falls below 100x.
conebench:
	$(GO) run ./cmd/benchsuite -cone-bench-out BENCH_3.json

# Search-strategy benchmark smoke: per-candidate full rescore vs
# incremental gray-code Flip on the synth12 twin plus the
# beyond-exhaustive strategies on the wide twins, persisted as
# BENCH_4.json (uploaded as a CI artifact). Exits non-zero if the
# gray-code or branch-and-bound winner disagrees with the reference
# scan at any worker count, if the per-candidate flip speedup falls
# below 10x, if a heuristic beats the exact branch-and-bound at k=24,
# or if annealing fails to strictly beat the MinPower heuristic at k=32.
searchbench:
	$(GO) run ./cmd/benchsuite -search-bench-out BENCH_4.json

# Corpus smoke: emit the small public twins as BLIF, stream the
# directory through the concurrent corpus engine (untimed and timed
# flows), and gate on row agreement with the direct in-memory gen-twin
# flow (-check-twins): sizes must match exactly, measured/estimated
# power to float-noise tolerance. Exits non-zero on any disagreement,
# parse failure, or error row.
corpussmoke:
	rm -rf corpus-smoke
	$(GO) run ./cmd/genbench -dir corpus-smoke -only apex7,frg1,x1
	$(GO) run ./cmd/dominoflow -dir corpus-smoke -vectors 512 -workers 4 -check-twins -jsonl corpus-smoke/rows.jsonl
	$(GO) run ./cmd/dominoflow -dir corpus-smoke -table 2 -vectors 512 -workers 2 -check-twins

lint:
	$(GO) vet ./...
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

fmt:
	gofmt -w .

# Full batch sweep; writes results.md / results.json under ./results.
benchsuite:
	$(GO) run ./cmd/benchsuite -out results
